// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Tests for the allocation-free evaluation kernel: the bump arena, the
// SSO LinearForm (property-tested against a naive map oracle), the pooled
// StateRegistry (property-tested against a naive set-of-vectors oracle),
// and the steady-state guarantee that a warm evaluator re-runs without
// heap allocation and with bit-identical results.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <string_view>
#include <vector>

#include "automaton/compiled_cache.h"
#include "automaton/counting.h"
#include "automaton/doc_eval.h"
#include "automaton/grammar_eval.h"
#include "data/generator.h"
#include "estimator/estimator.h"
#include "estimator/synopsis.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "xmlsel/arena.h"

namespace xmlsel {
namespace {

// --------------------------------------------------------------------
// Arena

TEST(ArenaTest, AllocationsAreAlignedAndDisjoint) {
  Arena arena(64);  // small chunks force the slow path early
  std::vector<std::span<uint64_t>> spans;
  for (size_t n = 1; n <= 32; ++n) {
    std::span<uint64_t> s = arena.AllocateSpan<uint64_t>(n);
    ASSERT_EQ(s.size(), n);
    ASSERT_EQ(reinterpret_cast<uintptr_t>(s.data()) % alignof(uint64_t), 0u);
    for (size_t i = 0; i < n; ++i) s[i] = (n << 16) | i;
    spans.push_back(s);
  }
  // No allocation overwrote an earlier one.
  for (size_t n = 1; n <= 32; ++n) {
    std::span<uint64_t> s = spans[n - 1];
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(s[i], (n << 16) | i);
  }
  EXPECT_GE(arena.bytes_reserved(), 64);
}

TEST(ArenaTest, CopySpanIsStable) {
  Arena arena;
  std::vector<int32_t> src = {5, 4, 3, 2, 1};
  std::span<int32_t> copy =
      arena.CopySpan<int32_t>(std::span<const int32_t>(src));
  src.assign(5, 0);  // mutating the source must not affect the copy
  ASSERT_EQ(copy.size(), 5u);
  for (int32_t i = 0; i < 5; ++i) EXPECT_EQ(copy[static_cast<size_t>(i)], 5 - i);
}

TEST(ArenaTest, MarkResetReclaimsWithoutFreeing) {
  Arena arena(128);
  arena.AllocateSpan<uint8_t>(100);
  Arena::Mark m = arena.mark();
  arena.AllocateSpan<uint8_t>(1000);  // spills into further chunks
  int64_t reserved = arena.bytes_reserved();
  arena.ResetTo(m);
  // Re-allocating the same amount after the reset buys no new chunk.
  int64_t heap0 = HotLoopHeapAllocs();
  arena.AllocateSpan<uint8_t>(1000);
  EXPECT_EQ(HotLoopHeapAllocs() - heap0, 0);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaTest, ScopedMarkRewindsOnScopeExit) {
  Arena arena(128);
  arena.AllocateSpan<uint8_t>(10);
  Arena::Mark before = arena.mark();
  {
    ScopedArenaMark scope(&arena);
    arena.AllocateSpan<uint8_t>(500);
  }
  Arena::Mark after = arena.mark();
  EXPECT_EQ(before.chunk, after.chunk);
  EXPECT_EQ(before.used, after.used);
}

// --------------------------------------------------------------------
// LinearForm vs. a naive map oracle

/// Naive reference: constant + map from variable key to coefficient,
/// saturating exactly like the kernel claims to.
struct OracleForm {
  int64_t constant = 0;
  std::map<uint64_t, int64_t> terms;

  static int64_t Sat(int64_t v) {
    return v > kCountSaturate ? kCountSaturate : v;
  }
  void Add(const OracleForm& o) {
    constant = Sat(constant + o.constant);
    for (const auto& [k, c] : o.terms) {
      int64_t next = Sat(terms[k] + c);
      if (next == 0) {
        terms.erase(k);
      } else {
        terms[k] = next;
      }
    }
  }
  void Scale(int64_t s) {
    if (s == 0) {
      constant = 0;
      terms.clear();
      return;
    }
    auto mul = [](int64_t a, int64_t b) {
      int64_t r;
      if (__builtin_mul_overflow(a, b, &r)) return kCountSaturate;
      return Sat(r);
    };
    constant = mul(constant, s);
    for (auto it = terms.begin(); it != terms.end();) {
      it->second = mul(it->second, s);
      it = it->second == 0 ? terms.erase(it) : std::next(it);
    }
  }
};

void ExpectMatchesOracle(const LinearForm& f, const OracleForm& o) {
  ASSERT_EQ(f.constant, o.constant);
  ASSERT_EQ(f.size(), o.terms.size());
  size_t i = 0;
  for (const auto& [k, c] : o.terms) {
    EXPECT_EQ(f.term(i).first, k);
    EXPECT_EQ(f.term(i).second, c);
    ++i;
  }
  // Invariants: sorted keys, no duplicates, no zero coefficients.
  for (size_t j = 0; j + 1 < f.size(); ++j) {
    EXPECT_LT(f.term(j).first, f.term(j + 1).first);
  }
  for (const LinearForm::Term& t : f) EXPECT_NE(t.second, 0);
}

TEST(LinearFormPropertyTest, RandomAddSequencesMatchMapOracle) {
  Rng rng(20260806);
  for (int trial = 0; trial < 200; ++trial) {
    LinearForm f;
    OracleForm o;
    for (int step = 0; step < 30; ++step) {
      int op = static_cast<int>(rng.Uniform(0, 3));
      if (op == 0) {
        // Add a random small form (possibly with negative coefficients,
        // to exercise cancellation).
        LinearForm g;
        OracleForm og;
        int64_t c = rng.Uniform(-3, 3);
        g.constant = c;
        og.constant = c;
        uint64_t key = 0;
        int terms = static_cast<int>(rng.Uniform(0, 4));
        for (int t = 0; t < terms; ++t) {
          key += static_cast<uint64_t>(rng.Uniform(1, 5));
          int64_t coeff = rng.Uniform(-4, 4);
          if (coeff == 0) coeff = 1;
          g.PushTerm(key, coeff);
          og.terms[key] = coeff;
        }
        f.Add(g);
        o.Add(og);
      } else if (op == 1) {
        int64_t s = rng.Uniform(-2, 3);
        f.ScaleBy(s);
        o.Scale(s);
      } else if (op == 2) {
        f.Add(f);  // aliasing self-add
        OracleForm copy = o;
        o.Add(copy);
      } else {
        // Near-saturation constants: the clamp must match the oracle's.
        LinearForm g = LinearForm::Constant(kCountSaturate - 1);
        OracleForm og;
        og.constant = kCountSaturate - 1;
        f.Add(g);
        o.Add(og);
      }
      ExpectMatchesOracle(f, o);
    }
    // Copy/move round-trips preserve value.
    LinearForm copy = f;
    ExpectMatchesOracle(copy, o);
    LinearForm moved = std::move(copy);
    ExpectMatchesOracle(moved, o);
    copy = moved;
    ExpectMatchesOracle(copy, o);
  }
}

TEST(LinearFormPropertyTest, SpillAndCancellationReturnPath) {
  // Grow past the inline capacity, then cancel back down to empty.
  LinearForm f;
  OracleForm o;
  for (uint64_t k = 1; k <= 8; ++k) {
    LinearForm g;
    g.PushTerm(k, static_cast<int64_t>(k));
    OracleForm og;
    og.terms[k] = static_cast<int64_t>(k);
    f.Add(g);
    o.Add(og);
  }
  ExpectMatchesOracle(f, o);
  EXPECT_EQ(f.size(), 8u);
  LinearForm neg = f;
  neg.ScaleBy(-1);
  f.Add(neg);
  EXPECT_TRUE(f.IsConstant());
  EXPECT_EQ(f.constant, 0);
}

// --------------------------------------------------------------------
// StateRegistry vs. a naive oracle

TEST(StateRegistryPropertyTest, PooledStorageMatchesNaiveInterning) {
  Rng rng(77);
  StateRegistry reg;
  std::vector<std::vector<QPair>> oracle = {{}};  // id 0 = ∅
  for (int step = 0; step < 2000; ++step) {
    // Random sorted duplicate-free pair set.
    std::vector<QPair> pairs;
    uint32_t used = 0;
    int n = static_cast<int>(rng.Uniform(0, 6));
    for (int i = 0; i < n; ++i) {
      int32_t node = static_cast<int32_t>(rng.Uniform(0, 7));
      if (used & (1u << node)) continue;
      used |= 1u << node;
      pairs.push_back(MakeQPair(node, static_cast<uint32_t>(
                                          rng.Uniform(0, 3))));
    }
    std::sort(pairs.begin(), pairs.end());

    int64_t naive_id = -1;
    for (size_t i = 0; i < oracle.size(); ++i) {
      if (oracle[i] == pairs) {
        naive_id = static_cast<int64_t>(i);
        break;
      }
    }
    StateId id = rng.Chance(0.5) ? reg.InternSorted(pairs)
                                 : reg.Intern(pairs);
    if (naive_id >= 0) {
      EXPECT_EQ(id, naive_id);
    } else {
      EXPECT_EQ(id, static_cast<StateId>(oracle.size()));
      oracle.push_back(pairs);
    }
    // The returned span matches the oracle's pair set.
    std::span<const QPair> got = reg.pairs(id);
    ASSERT_EQ(got.size(), pairs.size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), pairs.begin()));
    for (QPair p : pairs) EXPECT_TRUE(reg.Contains(id, p));
    EXPECT_FALSE(reg.Contains(id, MakeQPair(15, 7)));
  }
  EXPECT_EQ(reg.size(), static_cast<int64_t>(oracle.size()));

  // Id stability: every previously interned set still maps to its id and
  // its pooled pairs survived all intervening growth.
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(reg.InternSorted(oracle[i]), static_cast<StateId>(i));
    std::span<const QPair> got = reg.pairs(static_cast<StateId>(i));
    ASSERT_EQ(got.size(), oracle[i].size());
    EXPECT_TRUE(std::equal(got.begin(), got.end(), oracle[i].begin()));
  }
}

TEST(StateRegistryTest, EmptyStateInvariant) {
  StateRegistry reg;
  EXPECT_EQ(reg.empty_state(), 0);
  EXPECT_EQ(reg.Intern(std::span<const QPair>{}), 0);
  EXPECT_EQ(reg.InternSorted(std::span<const QPair>{}), 0);
  EXPECT_TRUE(reg.pairs(0).empty());
  EXPECT_EQ(reg.size(), 1);
}

TEST(StateRegistryTest, UnsortedInternCanonicalizes) {
  StateRegistry reg;
  std::vector<QPair> fwd = {MakeQPair(1, 0), MakeQPair(2, 1),
                            MakeQPair(3, 0)};
  std::vector<QPair> rev(fwd.rbegin(), fwd.rend());
  EXPECT_EQ(reg.Intern(fwd), reg.Intern(rev));
}

// --------------------------------------------------------------------
// Transition scratch reuse and the steady-state zero-allocation claim

TEST(KernelTest, ScratchReuseMatchesFreshScratch) {
  Rng rng(99);
  for (int iter = 0; iter < 20; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, 40, 3, 0.5);
    Query q = testing_util::RandomQuery(&rng, doc, 4, false);
    Result<CompiledQuery> cq = CompiledQuery::Compile(q);
    ASSERT_TRUE(cq.ok());
    // Same transitions through one reused scratch vs. the wrapper's
    // fresh scratch: identical states and counts.
    StateRegistry reg_a;
    StateRegistry reg_b;
    TransitionScratch<int64_t> scratch;
    AnnState<int64_t> acc_a;
    AnnState<int64_t> out_a;
    AnnState<int64_t> acc_b;
    for (int step = 0; step < 10; ++step) {
      LabelId label = static_cast<LabelId>(rng.Uniform(1, 3));
      CountingTransitionInto<Int64Ops>(cq.value(), &reg_a, acc_a,
                                       AnnState<int64_t>{}, label, true,
                                       &scratch, &out_a);
      std::swap(acc_a, out_a);
      acc_b = CountingTransition<Int64Ops>(cq.value(), &reg_b, acc_b,
                                           AnnState<int64_t>{}, label, true);
      ASSERT_EQ(reg_a.pairs(acc_a.state).size(),
                reg_b.pairs(acc_b.state).size());
      ASSERT_TRUE(std::equal(reg_a.pairs(acc_a.state).begin(),
                             reg_a.pairs(acc_a.state).end(),
                             reg_b.pairs(acc_b.state).begin()));
      ASSERT_EQ(acc_a.counts, acc_b.counts);
    }
  }
}

TEST(KernelTest, WarmEvaluatorReRunsWithoutHeapAllocation) {
  Document doc = GenerateDataset(DatasetId::kXmark, 5000, 3);
  SynopsisOptions sopts;
  sopts.kappa = 40;  // lossy: the star path must be allocation-free too
  Synopsis synopsis = Synopsis::Build(doc, sopts);
  NameTable names = synopsis.names();
  const char* kQueries[] = {"//item[./mailbox]//keyword", "//person//name",
                            "//open_auction[./bidder]//increase"};
  for (const char* text : kQueries) {
    Result<Query> q = ParseQuery(text, &names);
    ASSERT_TRUE(q.ok());
    Result<CompiledQuery> cq = CompiledQuery::Compile(q.value());
    ASSERT_TRUE(cq.ok());
    for (BoundMode mode : {BoundMode::kLower, BoundMode::kUpper}) {
      GrammarEvaluator eval(&synopsis.lossy(), &cq.value(),
                            &synopsis.label_maps(), mode,
                            &synopsis.eval_cache());
      GrammarEvalResult cold = eval.Evaluate();
      GrammarEvalResult warm = eval.Evaluate();
      // Bit-identical result, no σ recomputation, zero heap allocations
      // on the steady-state path.
      EXPECT_EQ(warm.count, cold.count) << text;
      EXPECT_EQ(warm.accepted, cold.accepted) << text;
      EXPECT_EQ(warm.sigma_entries, 0) << text;
      EXPECT_EQ(warm.heap_allocs, 0) << text;
      EXPECT_EQ(warm.distinct_states, cold.distinct_states) << text;
      // Cold-pass counters are live.
      EXPECT_GT(cold.memo_probes, 0) << text;
      EXPECT_GT(cold.intern_probes, 0) << text;
      EXPECT_GT(cold.pool_pairs, 0) << text;
    }
  }
}

// --------------------------------------------------------------------
// Dense bitset states vs. the sorted-span oracle

/// Random per-node FOLLOWING masks over `size` query nodes, each with at
/// most 3 bits so the pair space always stays dense.
std::vector<uint32_t> RandomFollowingMasks(Rng* rng, int32_t size) {
  std::vector<uint32_t> masks(static_cast<size_t>(size), 0);
  for (int32_t n = 1; n < size; ++n) {
    for (int b = 0; b < 3; ++b) {
      if (rng->Chance(0.3)) {
        masks[static_cast<size_t>(n)] |=
            1u << rng->Uniform(1, static_cast<int64_t>(size) - 1);
      }
    }
  }
  return masks;
}

TEST(PairIndexerTest, RoundTripsAndPreservesSortedOrder) {
  Rng rng(4242);
  for (int trial = 0; trial < 100; ++trial) {
    int32_t size = static_cast<int32_t>(rng.Uniform(2, 9));
    std::vector<uint32_t> masks = RandomFollowingMasks(&rng, size);
    PairIndexer idx{std::span<const uint32_t>(masks)};
    ASSERT_TRUE(idx.dense());
    QPair prev = 0;
    for (int32_t bit = 0; bit < idx.total_bits(); ++bit) {
      QPair p = idx.PairAt(bit);
      // Bit order equals packed-QPair sorted order (this is what lets the
      // dense kernel emit canonical spans without sorting).
      if (bit > 0) EXPECT_LT(prev, p);
      prev = p;
      ASSERT_TRUE(idx.Indexable(p));
      EXPECT_EQ(idx.IndexOf(p), bit);  // PairAt/IndexOf are inverse
    }
    // Node blocks tile [0, total_bits) with 2^|FOLLOWING(n)| bits each.
    int32_t expect_begin = 0;
    for (int32_t n = 0; n < size; ++n) {
      EXPECT_EQ(idx.NodeBegin(n), expect_begin);
      EXPECT_EQ(idx.NodeEnd(n) - idx.NodeBegin(n),
                1 << __builtin_popcount(masks[static_cast<size_t>(n)]));
      expect_begin = idx.NodeEnd(n);
    }
    EXPECT_EQ(expect_begin, idx.total_bits());
  }
}

TEST(StateBitsPropertyTest, WordOpsMatchSortedSpanOracle) {
  Rng rng(20260808);
  for (int trial = 0; trial < 30; ++trial) {
    int32_t size = static_cast<int32_t>(rng.Uniform(2, 8));
    std::vector<uint32_t> masks = RandomFollowingMasks(&rng, size);
    PairIndexer idx{std::span<const uint32_t>(masks)};
    ASSERT_TRUE(idx.dense());

    StateRegistry dense_reg;
    dense_reg.AttachIndexer(&idx);
    StateRegistry flat_reg;  // oracle: identical insertions, span path only
    ASSERT_TRUE(dense_reg.dense());
    ASSERT_FALSE(flat_reg.dense());

    std::vector<std::vector<QPair>> spans = {{}};
    for (int step = 0; step < 60; ++step) {
      // Random indexable sorted pair set: a subset of the dense bits.
      std::vector<QPair> pairs;
      for (int32_t bit = 0; bit < idx.total_bits(); ++bit) {
        if (rng.Chance(0.25)) pairs.push_back(idx.PairAt(bit));
      }
      StateId a = dense_reg.InternSorted(pairs);
      StateId b = flat_reg.InternSorted(pairs);
      ASSERT_EQ(a, b);  // dense images never perturb id assignment
      if (a == static_cast<StateId>(spans.size())) spans.push_back(pairs);

      const StateBits& bits = dense_reg.bits(a);
      EXPECT_EQ(bits.Popcount(), static_cast<int32_t>(pairs.size()));
      EXPECT_EQ(bits.Any(), !pairs.empty());
      for (int32_t bit = 0; bit < idx.total_bits(); ++bit) {
        QPair p = idx.PairAt(bit);
        bool in_span = std::binary_search(pairs.begin(), pairs.end(), p);
        EXPECT_EQ(bits.Test(bit), in_span);
        EXPECT_EQ(dense_reg.Contains(a, p), flat_reg.Contains(b, p));
        if (in_span) {
          // Rank == position in the sorted span: the lookup the dense
          // FindCount path uses in place of binary search.
          auto it = std::lower_bound(pairs.begin(), pairs.end(), p);
          EXPECT_EQ(bits.RankBelow(bit),
                    static_cast<int32_t>(it - pairs.begin()));
        }
      }
      // Pairs outside the indexer's space fall back to the span path.
      EXPECT_FALSE(dense_reg.Contains(a, MakeQPair(kMaxQueryNodes - 1, 0)));
    }

    // Word-wide union/intersection vs. std::set_union/set_intersection.
    int64_t max_id = static_cast<int64_t>(spans.size()) - 1;
    for (int step = 0; step < 40; ++step) {
      StateId i = static_cast<StateId>(rng.Uniform(0, max_id));
      StateId j = static_cast<StateId>(rng.Uniform(0, max_id));
      StateBits u = dense_reg.bits(i);
      u.OrWith(dense_reg.bits(j));
      StateBits n = dense_reg.bits(i);
      n.AndWith(dense_reg.bits(j));
      std::vector<QPair> want_u;
      std::vector<QPair> want_n;
      const auto& si = spans[static_cast<size_t>(i)];
      const auto& sj = spans[static_cast<size_t>(j)];
      std::set_union(si.begin(), si.end(), sj.begin(), sj.end(),
                     std::back_inserter(want_u));
      std::set_intersection(si.begin(), si.end(), sj.begin(), sj.end(),
                            std::back_inserter(want_n));
      std::vector<QPair> got_u;
      std::vector<QPair> got_n;
      for (int32_t bit = 0; bit < idx.total_bits(); ++bit) {
        if (u.Test(bit)) got_u.push_back(idx.PairAt(bit));
        if (n.Test(bit)) got_n.push_back(idx.PairAt(bit));
      }
      EXPECT_EQ(got_u, want_u);
      EXPECT_EQ(got_n, want_n);
      EXPECT_EQ(u.Popcount(), static_cast<int32_t>(want_u.size()));
      EXPECT_EQ(n.Popcount(), static_cast<int32_t>(want_n.size()));
    }
  }
}

TEST(KernelTest, DenseBitsetKernelMatchesSortedSpanOracle) {
  Rng rng(31337);
  int dense_seen = 0;
  for (int iter = 0; iter < 60; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, 60, 3, 0.5);
    Query q = testing_util::RandomQuery(&rng, doc, 5,
                                        /*with_order_axes=*/true);
    Result<CompiledQuery> cq = CompiledQuery::Compile(q);
    if (!cq.ok()) continue;  // too large after descendant expansion
    if (cq.value().indexer().dense()) ++dense_seen;
    for (bool dedup : {true, false}) {
      DocEvalResult dense = EvaluateOnDocument(cq.value(), doc, dedup,
                                               /*use_dense_states=*/true);
      DocEvalResult flat = EvaluateOnDocument(cq.value(), doc, dedup,
                                              /*use_dense_states=*/false);
      // Bit-identical outputs including the state-id space: the dense
      // kernel must reproduce the span kernel's interning order exactly.
      EXPECT_EQ(dense.count, flat.count);
      EXPECT_EQ(dense.accepted, flat.accepted);
      EXPECT_EQ(dense.distinct_states, flat.distinct_states);
    }
  }
  EXPECT_GT(dense_seen, 30);  // the trials actually exercised the bitset path
}

// --------------------------------------------------------------------
// Compiled-query cache

TEST(CompiledCacheTest, RepeatedShapesHitAndStayBitIdentical) {
  struct Case {
    DatasetId dataset;
    const char* queries[3];
  };
  const Case kCases[] = {
      {DatasetId::kXmark,
       {"//item[./mailbox]//keyword", "//person//name",
        "//open_auction[./bidder]//increase"}},
      {DatasetId::kDblp,
       {"//article//author", "//inproceedings[./title]",
        "//article[./title]//author"}},
  };
  for (const Case& c : kCases) {
    Document doc = GenerateDataset(c.dataset, 1500, 3);
    for (int32_t kappa : {0, 30}) {
      SynopsisOptions sopts;
      sopts.kappa = kappa;
      SelectivityEstimator est(Synopsis::Build(doc, sopts));
      const CompiledQueryCache& cache = est.synopsis().query_cache();
      std::vector<SelectivityEstimate> cold;
      for (const char* text : c.queries) {
        Result<SelectivityEstimate> r = est.Estimate(text);
        ASSERT_TRUE(r.ok()) << text;
        cold.push_back(r.value());
      }
      EXPECT_EQ(cache.misses(), 3);
      EXPECT_EQ(cache.hits(), 0);
      EXPECT_EQ(cache.size(), 3);
      // Every repeat is served from the cache and reproduces the cold
      // compile's estimate bit for bit.
      for (int round = 0; round < 3; ++round) {
        for (size_t i = 0; i < 3; ++i) {
          Result<SelectivityEstimate> r = est.Estimate(c.queries[i]);
          ASSERT_TRUE(r.ok());
          EXPECT_EQ(r.value().lower, cold[i].lower) << c.queries[i];
          EXPECT_EQ(r.value().upper, cold[i].upper) << c.queries[i];
        }
      }
      EXPECT_EQ(cache.misses(), 3);
      EXPECT_EQ(cache.hits(), 9);
    }
  }
}

TEST(CompiledCacheTest, BatchCompilesEachDistinctShapeOnce) {
  Document doc = GenerateDataset(DatasetId::kXmark, 2000, 3);
  SynopsisOptions sopts;
  sopts.kappa = 20;
  SelectivityEstimator est(Synopsis::Build(doc, sopts));
  const char* kShapes[] = {"//item//keyword", "//person//name"};
  std::vector<std::string_view> batch;
  for (int i = 0; i < 12; ++i) batch.push_back(kShapes[i % 2]);
  std::vector<Result<SelectivityEstimate>> out =
      est.EstimateBatch(std::span<const std::string_view>(batch), 1);
  ASSERT_EQ(out.size(), batch.size());
  for (const auto& r : out) ASSERT_TRUE(r.ok());
  // k distinct shapes in the batch cost exactly k compiles.
  EXPECT_EQ(est.synopsis().query_cache().misses(), 2);
  EXPECT_EQ(est.synopsis().query_cache().hits(), 10);
  EXPECT_EQ(est.synopsis().query_cache().size(), 2);
  for (size_t i = 2; i < out.size(); ++i) {
    EXPECT_EQ(out[i].value().lower, out[i % 2].value().lower);
    EXPECT_EQ(out[i].value().upper, out[i % 2].value().upper);
  }
}

TEST(CompiledCacheTest, UnsatisfiableAndCopySemantics) {
  Document doc = GenerateDataset(DatasetId::kXmark, 800, 3);
  SynopsisOptions sopts;
  Synopsis synopsis = Synopsis::Build(doc, sopts);
  NameTable names = synopsis.names();
  // An unsatisfiable query (conflicting tests on a parent-merged node)
  // answers [0, 0] without polluting the cache.
  Result<Query> unsat = ParseQuery("//item/keyword[./parent::person]", &names);
  ASSERT_TRUE(unsat.ok());
  Result<std::shared_ptr<const PreparedQuery>> pq =
      synopsis.query_cache().Prepare(unsat.value());
  ASSERT_TRUE(pq.ok());
  EXPECT_TRUE(pq.value()->unsatisfiable);
  EXPECT_EQ(synopsis.query_cache().size(), 0);
  // Warm the cache, then copy: the copy starts cold (its NameTable is a
  // different object, so cached keys must not carry over).
  Result<Query> ok_q = ParseQuery("//item//keyword", &names);
  ASSERT_TRUE(ok_q.ok());
  ASSERT_TRUE(synopsis.query_cache().Prepare(ok_q.value()).ok());
  EXPECT_EQ(synopsis.query_cache().size(), 1);
  Synopsis copy = synopsis;
  EXPECT_EQ(copy.query_cache().size(), 0);
  EXPECT_EQ(copy.query_cache().hits(), 0);
  EXPECT_EQ(synopsis.query_cache().size(), 1);  // source keeps its entries
}

TEST(KernelTest, CountersSeparateColdFromWarm) {
  Document doc = GenerateDataset(DatasetId::kXmark, 2000, 3);
  SynopsisOptions sopts;
  sopts.kappa = 0;
  Synopsis synopsis = Synopsis::Build(doc, sopts);
  NameTable names = synopsis.names();
  Result<Query> q = ParseQuery("//item//keyword", &names);
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> cq = CompiledQuery::Compile(q.value());
  ASSERT_TRUE(cq.ok());
  GrammarEvaluator eval(&synopsis.lossy(), &cq.value(),
                        &synopsis.label_maps(), BoundMode::kLower,
                        &synopsis.eval_cache());
  GrammarEvalResult cold = eval.Evaluate();
  GrammarEvalResult warm = eval.Evaluate();
  // Warm probes are the memo-served replay: strictly fewer than cold,
  // and every warm memo probe is a hit.
  EXPECT_LT(warm.memo_probes, cold.memo_probes);
  EXPECT_EQ(warm.memo_hits, warm.memo_probes);
  // The state space did not grow on the warm pass.
  EXPECT_EQ(warm.pool_pairs, cold.pool_pairs);
  EXPECT_EQ(warm.distinct_states, cold.distinct_states);
}

}  // namespace
}  // namespace xmlsel
