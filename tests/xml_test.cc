// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Unit tests for the XML substrate: document arena, binary view, bindd
// paths, parser, writer, and statistics.

#include <gtest/gtest.h>

#include "data/generator.h"
#include "verify/verify.h"
#include "xml/binary_tree.h"
#include "xml/document.h"
#include "xml/parser.h"
#include "xml/stats.h"
#include "xml/writer.h"

namespace xmlsel {
namespace {

TEST(DocumentTest, AppendChildBuildsOrderedTree) {
  Document doc;
  NodeId a = doc.AppendChild(doc.virtual_root(), "a");
  NodeId b = doc.AppendChild(a, "b");
  NodeId c = doc.AppendChild(a, "c");
  EXPECT_EQ(doc.document_element(), a);
  EXPECT_EQ(doc.first_child(a), b);
  EXPECT_EQ(doc.next_sibling(b), c);
  EXPECT_EQ(doc.last_child(a), c);
  EXPECT_EQ(doc.parent(c), a);
  EXPECT_EQ(doc.element_count(), 3);
}

TEST(DocumentTest, InsertFirstChildAndNextSibling) {
  Document doc;
  NodeId a = doc.AppendChild(doc.virtual_root(), "a");
  NodeId b = doc.AppendChild(a, "b");
  NodeId x = doc.InsertFirstChild(a, doc.names().Intern("x"));
  EXPECT_EQ(doc.first_child(a), x);
  EXPECT_EQ(doc.next_sibling(x), b);
  EXPECT_EQ(doc.prev_sibling(b), x);
  NodeId y = doc.InsertNextSibling(x, doc.names().Intern("y"));
  EXPECT_EQ(doc.next_sibling(x), y);
  EXPECT_EQ(doc.next_sibling(y), b);
  EXPECT_EQ(doc.last_child(a), b);
  NodeId z = doc.InsertNextSibling(b, doc.names().Intern("z"));
  EXPECT_EQ(doc.last_child(a), z);
}

TEST(DocumentTest, DeleteSubtreeUnlinksAndTombstones) {
  Document doc;
  NodeId a = doc.AppendChild(doc.virtual_root(), "a");
  NodeId b = doc.AppendChild(a, "b");
  NodeId c = doc.AppendChild(b, "c");
  NodeId d = doc.AppendChild(a, "d");
  doc.DeleteSubtree(b);
  EXPECT_FALSE(doc.IsLive(b));
  EXPECT_FALSE(doc.IsLive(c));
  EXPECT_EQ(doc.first_child(a), d);
  EXPECT_EQ(doc.element_count(), 2);
  Document compacted = doc.Compact();
  EXPECT_EQ(compacted.element_count(), 2);
  EXPECT_TRUE(doc.StructurallyEquals(compacted));
}

TEST(DocumentTest, SubtreeMetrics) {
  Document doc;
  NodeId a = doc.AppendChild(doc.virtual_root(), "a");
  NodeId b = doc.AppendChild(a, "b");
  doc.AppendChild(b, "c");
  doc.AppendChild(a, "d");
  EXPECT_EQ(doc.SubtreeSize(a), 4);
  EXPECT_EQ(doc.SubtreeHeight(a), 3);
  EXPECT_EQ(doc.Depth(a), 1);
  EXPECT_EQ(doc.Depth(doc.first_child(b)), 3);
  auto nodes = doc.SubtreeNodes(a);
  ASSERT_EQ(nodes.size(), 4u);
  EXPECT_EQ(nodes[0], a);  // document order
}

TEST(BinaryTreeTest, BinddRoundTrip) {
  Document doc;
  NodeId a = doc.AppendChild(doc.virtual_root(), "a");
  NodeId b = doc.AppendChild(a, "b");
  NodeId c = doc.AppendChild(a, "c");
  NodeId d = doc.AppendChild(c, "d");
  EXPECT_EQ(BinddOf(doc, a).ToString(), "ε");
  EXPECT_EQ(BinddOf(doc, b).ToString(), "1");
  EXPECT_EQ(BinddOf(doc, c).ToString(), "1.2");
  EXPECT_EQ(BinddOf(doc, d).ToString(), "1.2.1");
  for (NodeId n : {a, b, c, d}) {
    Result<NodeId> r = ResolveBindd(doc, BinddOf(doc, n));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), n);
  }
  Result<BinddPath> parsed = BinddPath::Parse("1.2.1");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(ResolveBindd(doc, parsed.value()).value(), d);
  EXPECT_FALSE(BinddPath::Parse("1.3").ok());
  EXPECT_FALSE(BinddPath::Parse("1..2").ok());
  EXPECT_FALSE(ResolveBindd(doc, BinddPath({2})).ok());
}

TEST(BinaryTreeTest, PostOrderVisitsChildrenFirst) {
  Document doc;
  NodeId a = doc.AppendChild(doc.virtual_root(), "a");
  NodeId b = doc.AppendChild(a, "b");
  NodeId c = doc.AppendChild(a, "c");
  auto order = BinaryPostOrder(doc);
  ASSERT_EQ(order.size(), 3u);
  // Binary: a's left = b, b's right = c. Post-order: c, b, a.
  EXPECT_EQ(order[0], c);
  EXPECT_EQ(order[1], b);
  EXPECT_EQ(order[2], a);
}

TEST(ParserTest, ParsesNestedElements) {
  auto r = ParseXml("<a><b><c/></b><b/></a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  const Document& doc = r.value();
  EXPECT_EQ(doc.element_count(), 4);
  NodeId a = doc.document_element();
  EXPECT_EQ(doc.names().Name(doc.label(a)), "a");
  NodeId b1 = doc.first_child(a);
  EXPECT_EQ(doc.names().Name(doc.label(b1)), "b");
  EXPECT_EQ(doc.names().Name(doc.label(doc.first_child(b1))), "c");
}

TEST(ParserTest, SkipsPrologAttributesCommentsText) {
  auto r = ParseXml(
      "<?xml version=\"1.0\"?><!DOCTYPE a><a x=\"1\" y='2'>text"
      "<!-- comment --><b z=\"v\"/><![CDATA[<fake/>]]></a>");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().element_count(), 2);
}

TEST(ParserTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseXml("<a><b></a>").ok());
  EXPECT_FALSE(ParseXml("<a>").ok());
  EXPECT_FALSE(ParseXml("</a>").ok());
  EXPECT_FALSE(ParseXml("<a/><b/>").ok());
  EXPECT_FALSE(ParseXml("plain text").ok());
  EXPECT_FALSE(ParseXml("<a x=></a>").ok());
}

TEST(ParserTest, LenientModeRecovers) {
  ParseOptions lenient;
  lenient.lenient_end_tags = true;
  auto r = ParseXml("<a><b></a>", lenient);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().element_count(), 2);
}

TEST(WriterTest, RoundTripsThroughParser) {
  Document d2;
  NodeId a = d2.AppendChild(d2.virtual_root(), "root");
  NodeId b = d2.AppendChild(a, "x");
  d2.AppendChild(b, "y");
  d2.AppendChild(a, "x");
  std::string xml = WriteXml(d2);
  auto reparsed = ParseXml(xml);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_TRUE(d2.StructurallyEquals(reparsed.value()));
}

TEST(WriterTest, RoundTripPropertyOverGeneratedDocuments) {
  // Property: for any generated document D, parse(write(D)) is
  // structurally equal to D, and the document/binary-tree verifier
  // accepts every intermediate artifact.
  const DatasetId kDatasets[] = {DatasetId::kXmark, DatasetId::kDblp,
                                 DatasetId::kSwissProt, DatasetId::kPsd,
                                 DatasetId::kCatalog};
  for (DatasetId id : kDatasets) {
    for (uint64_t seed : {1u, 2u}) {
      Document doc = GenerateDataset(id, 400, seed);
      ASSERT_TRUE(VerifyDocument(doc).ok()) << static_cast<int>(id);
      std::string xml = WriteXml(doc);
      auto reparsed = ParseXml(xml);
      ASSERT_TRUE(reparsed.ok()) << static_cast<int>(id);
      ASSERT_TRUE(VerifyDocument(reparsed.value()).ok())
          << static_cast<int>(id);
      EXPECT_TRUE(doc.StructurallyEquals(reparsed.value()))
          << static_cast<int>(id);
      // Second trip must be byte-stable: write(parse(write(D))) ==
      // write(D).
      std::string xml2 = WriteXml(reparsed.value());
      EXPECT_EQ(xml, xml2) << static_cast<int>(id);
      auto reparsed2 = ParseXml(xml2);
      ASSERT_TRUE(reparsed2.ok());
      ASSERT_TRUE(VerifyDocument(reparsed2.value()).ok());
      EXPECT_TRUE(reparsed.value().StructurallyEquals(reparsed2.value()));
    }
  }
}

TEST(WriterTest, IndentedOutputParses) {
  Document doc;
  NodeId a = doc.AppendChild(doc.virtual_root(), "a");
  doc.AppendChild(a, "b");
  WriteOptions opt;
  opt.indent = 2;
  std::string xml = WriteXml(doc, opt);
  EXPECT_NE(xml.find('\n'), std::string::npos);
  ASSERT_TRUE(ParseXml(xml).ok());
}

TEST(StatsTest, ComputesTable1Characteristics) {
  Document doc;
  NodeId a = doc.AppendChild(doc.virtual_root(), "a");
  NodeId b = doc.AppendChild(a, "b");
  doc.AppendChild(b, "c");
  doc.AppendChild(a, "b");
  DocumentStats stats = ComputeStats(doc);
  EXPECT_EQ(stats.element_count, 4);
  EXPECT_EQ(stats.max_depth, 3);
  EXPECT_DOUBLE_EQ(stats.average_depth, (1 + 2 + 3 + 2) / 4.0);
  EXPECT_EQ(stats.distinct_labels, 3);
  EXPECT_GT(stats.size_bytes, 0);
}

}  // namespace
}  // namespace xmlsel
