// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Unit tests for the counting substrate: linear forms, the state
// registry, compiled-query metadata, the transition function's algebraic
// properties (strict ≤ optimistic), and order relaxation.

#include <gtest/gtest.h>

#include "automaton/counting.h"
#include "automaton/doc_eval.h"
#include "baseline/exact.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace xmlsel {
namespace {

TEST(LinearFormTest, ConstantsAndVariables) {
  LinearForm f = LinearForm::Constant(3);
  EXPECT_TRUE(f.IsConstant());
  EXPECT_EQ(f.constant, 3);
  LinearForm v = LinearForm::Var(2, MakeQPair(1, 0));
  EXPECT_FALSE(v.IsConstant());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v.term(0).second, 1);
}

TEST(LinearFormTest, AdditionMergesSortedTerms) {
  LinearForm a = LinearForm::Var(0, MakeQPair(1, 0));
  LinearForm b = LinearForm::Var(1, MakeQPair(2, 0));
  LinearForm c = LinearForm::Var(0, MakeQPair(1, 0));
  a.Add(b);
  a.Add(c);
  a.Add(LinearForm::Constant(7));
  EXPECT_EQ(a.constant, 7);
  ASSERT_EQ(a.size(), 2u);
  // Variable (0, pair(1,0)) has coefficient 2 after the second add.
  EXPECT_EQ(a.term(0).second, 2);
  EXPECT_EQ(a.term(1).second, 1);
  EXPECT_TRUE(std::is_sorted(a.begin(), a.end()));
}

TEST(LinearFormTest, CancellationRemovesZeroTerms) {
  LinearForm a = LinearForm::Var(0, MakeQPair(1, 0));
  LinearForm neg = a;
  neg.ScaleBy(-1);
  a.Add(neg);
  EXPECT_TRUE(a.IsConstant());
  EXPECT_EQ(a.constant, 0);
}

TEST(LinearFormTest, SaturatesInsteadOfOverflowing) {
  LinearForm big = LinearForm::Constant((int64_t{1} << 55));
  big.Add(LinearForm::Constant(int64_t{1} << 55));
  big.Add(big);  // would overflow without saturation
  EXPECT_LE(big.constant, int64_t{1} << 56);
}

TEST(StateRegistryTest, InterningIsCanonical) {
  StateRegistry reg;
  EXPECT_EQ(reg.empty_state(), 0);
  StateId a = reg.Intern({MakeQPair(2, 1), MakeQPair(1, 0)});
  StateId b = reg.Intern({MakeQPair(1, 0), MakeQPair(2, 1)});
  EXPECT_EQ(a, b);  // order-insensitive
  EXPECT_TRUE(reg.Contains(a, MakeQPair(1, 0)));
  EXPECT_FALSE(reg.Contains(a, MakeQPair(3, 0)));
  EXPECT_EQ(reg.pairs(a).size(), 2u);
  EXPECT_TRUE(std::is_sorted(reg.pairs(a).begin(), reg.pairs(a).end()));
}

TEST(QPairTest, PackingRoundTrips) {
  QPair p = MakeQPair(13, 0x0f0f);
  EXPECT_EQ(QPairNode(p), 13);
  EXPECT_EQ(QPairMask(p), 0x0f0fu);
}

TEST(CompiledQueryTest, FollowingMasksAndSpine) {
  NameTable names;
  Result<Query> q =
      ParseQuery("//a[./following::b]/c[./following::d]", &names);
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> cq = CompiledQuery::Compile(q.value());
  ASSERT_TRUE(cq.ok());
  const CompiledQuery& c = cq.value();
  // The root's frontier contains both following-marked nodes (transitively).
  EXPECT_EQ(__builtin_popcount(c.following_mask(0)), 2);
  EXPECT_EQ(__builtin_popcount(c.all_following_bits()), 2);
  // The spine runs from the root to the match node.
  EXPECT_EQ(c.spine().front(), 0);
  EXPECT_EQ(c.spine().back(), c.match_node());
  for (size_t i = 0; i < c.spine().size(); ++i) {
    EXPECT_EQ(c.spine_index(c.spine()[i]), static_cast<int32_t>(i));
  }
}

TEST(CompiledQueryTest, DescendantExpansionInsertsAnyNodes) {
  NameTable names;
  Result<Query> q = ParseQuery("//a//b", &names);
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> cq = CompiledQuery::Compile(q.value());
  ASSERT_TRUE(cq.ok());
  // Original: root + a + b; expanded: two extra any-test nodes.
  EXPECT_EQ(cq.value().size(), 5);
  int any_nodes = 0;
  for (int32_t i = 1; i < cq.value().size(); ++i) {
    if (cq.value().query().node(i).test == kAnyTest) ++any_nodes;
    EXPECT_NE(cq.value().query().node(i).axis, Axis::kDescendant);
  }
  EXPECT_EQ(any_nodes, 2);
}

TEST(RelaxOrderTest, ReattachesOrderSubtreesUnderRoot) {
  NameTable names;
  Result<Query> q = ParseQuery("//a/following::b[./c]", &names);
  ASSERT_TRUE(q.ok());
  EXPECT_TRUE(HasOrderAxes(q.value()));
  Query relaxed = RelaxOrderConstraints(q.value());
  EXPECT_FALSE(HasOrderAxes(relaxed));
  // b (with its c child) now hangs off the root via descendant.
  const QueryNode& b = relaxed.node(relaxed.match_node());
  EXPECT_EQ(b.parent, relaxed.root());
  EXPECT_EQ(b.axis, Axis::kDescendant);
  EXPECT_EQ(b.children.size(), 1u);
}

TEST(RelaxOrderTest, NoOpOnOrderFreeQueries) {
  NameTable names;
  Result<Query> q = ParseQuery("//a[./b]//c", &names);
  ASSERT_TRUE(q.ok());
  EXPECT_FALSE(HasOrderAxes(q.value()));
  Query relaxed = RelaxOrderConstraints(q.value());
  EXPECT_EQ(relaxed.ToString(names), q.value().ToString(names));
}

/// Algebraic property: the optimistic discipline never yields a smaller
/// count than the strict one, and the strict count never exceeds exact.
class DisciplineOrderTest : public ::testing::TestWithParam<int> {};

TEST_P(DisciplineOrderTest, StrictLeExactLeOptimistic) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 6151);
  for (int iter = 0; iter < 10; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, 50, 3, 0.5);
    ExactEvaluator oracle(doc);
    for (int k = 0; k < 10; ++k) {
      Query q = testing_util::RandomQuery(&rng, doc, 5, false);
      Result<CompiledQuery> cq = CompiledQuery::Compile(q);
      ASSERT_TRUE(cq.ok());
      int64_t exact = oracle.Count(q);
      int64_t strict = EvaluateOnDocument(cq.value(), doc, true).count;
      int64_t optimistic = EvaluateOnDocument(cq.value(), doc, false).count;
      ASSERT_LE(strict, exact) << q.ToString(doc.names());
      ASSERT_GE(optimistic, exact) << q.ToString(doc.names());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DisciplineOrderTest, ::testing::Range(1, 9));

TEST(DocEvalTest, EmptyDocumentAndTrivialQueries) {
  Document empty;
  NameTable names;
  Result<Query> q = ParseQuery("//a", &names);
  ASSERT_TRUE(q.ok());
  Result<CompiledQuery> cq = CompiledQuery::Compile(q.value());
  ASSERT_TRUE(cq.ok());
  DocEvalResult r = EvaluateOnDocument(cq.value(), empty);
  EXPECT_EQ(r.count, 0);
  EXPECT_FALSE(r.accepted);
}

TEST(DocEvalTest, AcceptanceMatchesNonzeroCount) {
  Rng rng(404);
  for (int iter = 0; iter < 20; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, 30, 3, 0.5);
    Query q = testing_util::RandomQuery(&rng, doc, 4, false);
    Result<CompiledQuery> cq = CompiledQuery::Compile(q);
    ASSERT_TRUE(cq.ok());
    DocEvalResult r = EvaluateOnDocument(cq.value(), doc);
    EXPECT_EQ(r.accepted, r.count > 0) << q.ToString(doc.names());
  }
}

}  // namespace
}  // namespace xmlsel
