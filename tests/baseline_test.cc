// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Tests for the comparison baselines (path tree, Markov table,
// TreeSketch-lite) and for the exact evaluator itself against the naive
// embedding oracle.

#include <gtest/gtest.h>

#include <cmath>

#include "baseline/exact.h"
#include "baseline/markov_table.h"
#include "baseline/path_tree.h"
#include "baseline/treesketch_lite.h"
#include "data/generator.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace xmlsel {
namespace {

TEST(ExactEvaluatorTest, MatchesNaiveOracle) {
  Rng rng(123);
  for (int iter = 0; iter < 15; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, 35, 3, 0.5);
    ExactEvaluator oracle(doc);
    for (int k = 0; k < 10; ++k) {
      Query q = testing_util::RandomQuery(&rng, doc, 5, true);
      EXPECT_EQ(oracle.Count(q), testing_util::NaiveCount(doc, q))
          << q.ToString(doc.names());
    }
  }
}

TEST(ExactEvaluatorTest, MatchesReturnsTheWitnessSet) {
  auto d = ParseXml("<r><a><b/></a><a/><c><b/></c></r>");
  ASSERT_TRUE(d.ok());
  Document doc = std::move(d).value();
  ExactEvaluator oracle(doc);
  Result<Query> q = ParseQuery("//a/b", &doc.names());
  ASSERT_TRUE(q.ok());
  std::vector<NodeId> matches = oracle.Matches(q.value());
  ASSERT_EQ(matches.size(), 1u);
  EXPECT_EQ(doc.names().Name(doc.label(matches[0])), "b");
  EXPECT_EQ(doc.names().Name(doc.label(doc.parent(matches[0]))), "a");
  EXPECT_EQ(oracle.Count(q.value()), 1);
}

TEST(PathTreeTest, ExactOnSimplePathsWhenUnpruned) {
  Document doc = GenerateDataset(DatasetId::kDblp, 2000, 3);
  PathTree pt(doc, 0);
  ExactEvaluator oracle(doc);
  NameTable names = doc.names();
  for (const char* xpath : {"//author", "/dblp/article", "//article/title",
                            "//title/i"}) {
    Result<Query> q = ParseQuery(xpath, &names);
    ASSERT_TRUE(q.ok());
    EXPECT_NEAR(pt.EstimateCount(q.value()),
                static_cast<double>(oracle.Count(q.value())), 0.01)
        << xpath;
  }
}

TEST(PathTreeTest, PruningShrinksButStillEstimates) {
  Document doc = GenerateDataset(DatasetId::kXmark, 4000, 3);
  PathTree full(doc, 0);
  PathTree pruned(doc, 20);
  EXPECT_LT(pruned.SizeBytes(), full.SizeBytes());
  NameTable names = doc.names();
  Result<Query> q = ParseQuery("//item/name", &names);
  ASSERT_TRUE(q.ok());
  EXPECT_GE(pruned.EstimateCount(q.value()), 0.0);
}

TEST(MarkovTableTest, SecondOrderPathsAreExact) {
  // The Markov assumption is exact for order-2 paths by construction.
  Document doc = GenerateDataset(DatasetId::kCatalog, 2000, 3);
  MarkovTable mt(doc, 0);
  ExactEvaluator oracle(doc);
  NameTable names = doc.names();
  for (const char* xpath :
       {"//author", "//author/name", "//item//last_name"}) {
    Result<Query> q = ParseQuery(xpath, &names);
    ASSERT_TRUE(q.ok());
    double est = mt.EstimateCount(q.value());
    double exact = static_cast<double>(oracle.Count(q.value()));
    EXPECT_NEAR(est, exact, 0.05 * exact + 1.0) << xpath;
  }
}

TEST(MarkovTableTest, LongerPathsAreApproximate) {
  Document doc = GenerateDataset(DatasetId::kXmark, 3000, 5);
  MarkovTable mt(doc, 0);
  NameTable names = doc.names();
  Result<Query> q =
      ParseQuery("//open_auction/annotation/description//keyword", &names);
  ASSERT_TRUE(q.ok());
  EXPECT_GE(mt.EstimateCount(q.value()), 0.0);
}

TEST(MarkovTableTest, PruningReducesSize) {
  Document doc = GenerateDataset(DatasetId::kXmark, 3000, 5);
  MarkovTable full(doc, 0);
  MarkovTable pruned(doc, 50);
  EXPECT_LT(pruned.SizeBytes(), full.SizeBytes());
}

TEST(TreeSketchLiteTest, UnbudgetedSynopsisIsAccurateOnPaths) {
  Document doc = GenerateDataset(DatasetId::kCatalog, 2000, 3);
  TreeSketchLite ts(doc, 1 << 20);  // effectively unmerged
  ExactEvaluator oracle(doc);
  NameTable names = doc.names();
  for (const char* xpath : {"//author", "//author/name", "//item"}) {
    Result<Query> q = ParseQuery(xpath, &names);
    ASSERT_TRUE(q.ok());
    double exact = static_cast<double>(oracle.Count(q.value()));
    EXPECT_NEAR(ts.EstimateCount(q.value()), exact, 0.15 * exact + 1.0)
        << xpath;
  }
}

TEST(TreeSketchLiteTest, BudgetControlsSize) {
  Document doc = GenerateDataset(DatasetId::kXmark, 4000, 3);
  TreeSketchLite big(doc, 2000);
  TreeSketchLite small(doc, 100);
  EXPECT_LE(small.node_count(), 110);
  EXPECT_LT(small.SizeBytes(), big.SizeBytes());
  NameTable names = doc.names();
  Result<Query> q = ParseQuery("//item[./payment]/name", &names);
  ASSERT_TRUE(q.ok());
  EXPECT_GE(small.EstimateCount(q.value()), 0.0);
}

TEST(BaselinesTest, AllReturnFiniteEstimatesOnWorkloads) {
  Document doc = GenerateDataset(DatasetId::kSwissProt, 2500, 3);
  PathTree pt(doc, 200);
  MarkovTable mt(doc, 5);
  TreeSketchLite ts(doc, 300);
  Rng rng(6);
  for (int i = 0; i < 25; ++i) {
    Query q = testing_util::RandomQuery(&rng, doc, 5, false);
    for (double est : {pt.EstimateCount(q), mt.EstimateCount(q),
                       ts.EstimateCount(q)}) {
      EXPECT_TRUE(std::isfinite(est)) << q.ToString(doc.names());
      EXPECT_GE(est, 0.0) << q.ToString(doc.names());
    }
  }
}

}  // namespace
}  // namespace xmlsel
