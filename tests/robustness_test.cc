// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Robustness and stress tests: degenerate document shapes (deep chains,
// huge fanout — everything is iterative, nothing may overflow the C
// stack), fuzzed packed decoding, malformed XML/XPath inputs, and
// scale smoke tests on every dataset.

#include <gtest/gtest.h>

#include <string>

#include "baseline/exact.h"
#include "data/generator.h"
#include "estimator/estimator.h"
#include "grammar/bplex.h"
#include "grammar/dag.h"
#include "grammar/streaming.h"
#include "query/parser.h"
#include "storage/packed.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xmlsel {
namespace {

TEST(RobustnessTest, DeepChainDocument) {
  // 40k-deep chain: traversal, compression, expansion, estimation must
  // all be recursion-free.
  Document doc;
  NodeId cur = doc.AppendChild(doc.virtual_root(), "a");
  for (int i = 0; i < 40000; ++i) {
    cur = doc.AppendChild(cur, i % 2 ? "a" : "b");
  }
  EXPECT_EQ(doc.SubtreeHeight(doc.document_element()), 40001);
  SltGrammar g = BplexCompress(doc);
  EXPECT_TRUE(g.Expand(doc.names()).StructurallyEquals(doc));
  SelectivityEstimator est =
      SelectivityEstimator::Build(doc, SynopsisOptions{});
  Result<SelectivityEstimate> r = est.Estimate("//a/b");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().lower, 20000);
  // Serialization of the chain is likewise iterative.
  std::string xml = WriteXml(doc);
  EXPECT_GT(xml.size(), 200000u);
}

TEST(RobustnessTest, VeryDeepXmlTextRoundTrip) {
  // 120k-deep element chain as *text*: the parser, the streaming
  // front end, the writer, and the DAG builder must all hold up without
  // touching the C stack proportionally to depth.
  constexpr int kDepth = 120000;
  std::string xml;
  xml.reserve(static_cast<size_t>(kDepth) * 8);
  for (int i = 0; i < kDepth; ++i) xml += i % 2 ? "<b>" : "<a>";
  for (int i = kDepth - 1; i >= 0; --i) xml += i % 2 ? "</b>" : "</a>";
  Result<Document> doc = ParseXml(xml);
  ASSERT_TRUE(doc.ok()) << doc.status().message();
  EXPECT_EQ(doc.value().element_count(), kDepth);
  EXPECT_EQ(doc.value().SubtreeHeight(doc.value().document_element()),
            kDepth);
  // DAG construction over the chain (both the DOM-driven and the fused
  // streaming builder) is iterative.
  SltGrammar dag = BuildDagGrammar(doc.value());
  Result<StreamedDag> streamed = BuildDagGrammarStreaming(xml);
  ASSERT_TRUE(streamed.ok()) << streamed.status().message();
  EXPECT_EQ(EncodePacked(dag, doc.value().names().size()),
            EncodePacked(streamed.value().grammar,
                         streamed.value().names.size()));
  // Serialization back to text is likewise iterative and round-trips
  // (the writer self-closes the innermost empty element, so compare
  // structurally, not byte-for-byte).
  std::string rewritten = WriteXml(doc.value());
  EXPECT_GT(rewritten.size(), static_cast<size_t>(kDepth) * 7 - 8);
  Result<Document> reparsed = ParseXml(rewritten);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_TRUE(reparsed.value().StructurallyEquals(doc.value()));
}

TEST(RobustnessTest, HugeFanoutDocument) {
  Document doc;
  NodeId root = doc.AppendChild(doc.virtual_root(), "r");
  for (int i = 0; i < 60000; ++i) {
    doc.AppendChild(root, "leaf");
  }
  SltGrammar g = BplexCompress(doc);
  // With the paper's max_pattern_size = 20, runs compress in chunks of
  // ≤16 leaves (60000/16 ≈ 3750 occurrence nodes remain).
  EXPECT_LT(g.NodeCount(), 6000);
  EXPECT_TRUE(g.Expand(doc.names()).StructurallyEquals(doc));
  // Lifting the pattern-size cap enables true doubling rules.
  BplexOptions big;
  big.max_pattern_size = 1 << 20;
  SltGrammar g2 = BplexCompress(doc, big);
  EXPECT_LT(g2.NodeCount(), 500);
  EXPECT_TRUE(g2.Expand(doc.names()).StructurallyEquals(doc));
  SelectivityEstimator est =
      SelectivityEstimator::Build(doc, SynopsisOptions{});
  EXPECT_EQ(est.Estimate("//leaf").value().lower, 60000);
  EXPECT_EQ(est.Estimate("/r/leaf").value().upper, 60000);
}

TEST(RobustnessTest, SingleNodeAndTwoNodeDocuments) {
  for (const char* xml : {"<a/>", "<a><b/></a>"}) {
    auto d = ParseXml(xml);
    ASSERT_TRUE(d.ok());
    SelectivityEstimator est =
        SelectivityEstimator::Build(d.value(), SynopsisOptions{});
    Result<SelectivityEstimate> r = est.Estimate("//a");
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value().lower, 1);
    EXPECT_EQ(r.value().upper, 1);
  }
}

TEST(RobustnessTest, PackedDecodingOfFuzzedBuffersNeverCrashes) {
  // Corrupt valid encodings bit by bit; decoding must either succeed or
  // fail cleanly with kCorruption — never crash or hang.
  Rng rng(12345);
  Document doc = testing_util::RandomDocument(&rng, 120, 4, 0.5);
  SltGrammar g = BplexCompress(doc);
  std::vector<uint8_t> bytes = EncodePacked(g, doc.names().size());
  int decoded_ok = 0;
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> fuzzed = bytes;
    int flips = static_cast<int>(rng.Uniform(1, 8));
    for (int f = 0; f < flips; ++f) {
      size_t pos = static_cast<size_t>(
          rng.Uniform(0, static_cast<int64_t>(fuzzed.size()) - 1));
      fuzzed[pos] ^= static_cast<uint8_t>(1u << rng.Uniform(0, 7));
    }
    Result<SltGrammar> r = DecodePacked(fuzzed);
    if (r.ok()) ++decoded_ok;  // structurally valid by Validate()
  }
  // Some flips hit don't-care padding; most must be caught.
  EXPECT_LT(decoded_ok, 300);
}

TEST(RobustnessTest, TruncatedPackedBuffersFailCleanly) {
  Rng rng(777);
  Document doc = testing_util::RandomDocument(&rng, 80, 3, 0.5);
  SltGrammar g = BplexCompress(doc);
  std::vector<uint8_t> bytes = EncodePacked(g, doc.names().size());
  for (size_t keep = 0; keep < bytes.size(); keep += 7) {
    std::vector<uint8_t> truncated(bytes.begin(),
                                   bytes.begin() + static_cast<int64_t>(keep));
    Result<SltGrammar> r = DecodePacked(truncated);
    if (r.ok()) continue;  // only possible when keep covers everything
    EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
  }
}

TEST(RobustnessTest, MalformedXPathNeverCrashes) {
  NameTable names;
  for (const char* text :
       {"", "/", "//", "[", "]", "//a[", "//a]", "a//", "//a/following::",
        "self::", "//a[.//]", "//a[and]", "((((", "//a[./b and]",
        "//*[*]*", "/..", "//a/..//..", "a b c", "//a\\b"}) {
    Result<Query> r = ParseQuery(text, &names);
    if (r.ok()) {
      r.value().Validate();  // whatever parses must be coherent
    }
  }
}

TEST(RobustnessTest, MalformedXmlNeverCrashes) {
  for (const char* text :
       {"", "<", "<>", "<a", "<a b>", "<a b=>", "<a 'x'/>", "<!DOCTYPE",
        "<?", "<![CDATA[", "<a></b></a>", "<a><a><a>", "&amp;", "<a/><a/>",
        "<a><!--</a>", "<1tag/>"}) {
    Result<Document> r = ParseXml(text);
    if (r.ok()) {
      EXPECT_GE(r.value().element_count(), 1);
    }
  }
}

TEST(RobustnessTest, AllDatasetsEndToEndSmoke) {
  for (DatasetId id : {DatasetId::kDblp, DatasetId::kSwissProt,
                       DatasetId::kXmark, DatasetId::kPsd,
                       DatasetId::kCatalog}) {
    Document doc = GenerateDataset(id, 10000, 3);
    SynopsisOptions opts;
    opts.kappa = 30;
    SelectivityEstimator est = SelectivityEstimator::Build(doc, opts);
    ExactEvaluator oracle(doc);
    Rng rng(static_cast<uint64_t>(id) + 1);
    for (int i = 0; i < 5; ++i) {
      Query q = testing_util::RandomQuery(&rng, doc, 5, false);
      Result<SelectivityEstimate> r = est.EstimateQuery(q);
      ASSERT_TRUE(r.ok());
      int64_t exact = oracle.Count(q);
      EXPECT_LE(r.value().lower, exact)
          << DatasetName(id) << " " << q.ToString(doc.names());
      EXPECT_GE(r.value().upper, exact)
          << DatasetName(id) << " " << q.ToString(doc.names());
    }
    // Serialization survives a full round trip at this scale.
    Result<Document> reparsed = ParseXml(WriteXml(doc));
    ASSERT_TRUE(reparsed.ok()) << DatasetName(id);
    EXPECT_TRUE(reparsed.value().StructurallyEquals(doc));
  }
}

TEST(RobustnessTest, UpdateStormOnDeepAndFlatShapes) {
  // Alternating inserts/deletes at extreme positions on hostile shapes.
  for (const char* seed : {"<r><a><a><a><a><a/></a></a></a></a></r>",
                           "<r><x/><x/><x/><x/><x/><x/><x/><x/></r>"}) {
    auto d = ParseXml(seed);
    ASSERT_TRUE(d.ok());
    SltGrammar g = BplexCompress(d.value());
    NameTable names = d.value().names();
    Rng rng(31337);
    for (int step = 0; step < 40; ++step) {
      Document current = g.Expand(names);
      std::vector<NodeId> nodes =
          current.SubtreeNodes(current.virtual_root());
      NodeId target = nodes[static_cast<size_t>(
          rng.Uniform(1, static_cast<int64_t>(nodes.size()) - 1))];
      BinddPath path = BinddOf(current, target);
      Document tree = testing_util::RandomDocument(&rng, 4, 2, 0.7);
      UpdateOp op =
          rng.Chance(0.3) && target != current.document_element()
              ? UpdateOp::Delete(path)
              : (rng.Chance(0.5)
                     ? UpdateOp::FirstChild(path, tree.Compact())
                     : UpdateOp::NextSibling(path, tree.Compact()));
      Status st = ApplyUpdateToGrammar(&g, &names, op, BplexOptions{});
      ASSERT_TRUE(st.ok()) << st.ToString();
      g.Validate();
    }
  }
}

}  // namespace
}  // namespace xmlsel
