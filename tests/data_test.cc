// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Tests for the dataset generators (structural profiles must match
// Table 1's shape) and the F/B bisimulation index.

#include <gtest/gtest.h>

#include "data/fb_index.h"
#include "data/generator.h"
#include "xml/parser.h"
#include "xml/stats.h"

namespace xmlsel {
namespace {

TEST(GeneratorTest, Deterministic) {
  Document a = GenerateXmark(1000, 42);
  Document b = GenerateXmark(1000, 42);
  EXPECT_TRUE(a.StructurallyEquals(b));
  Document c = GenerateXmark(1000, 43);
  EXPECT_FALSE(a.StructurallyEquals(c));
}

TEST(GeneratorTest, HitsElementTargetApproximately) {
  for (DatasetId id : {DatasetId::kDblp, DatasetId::kSwissProt,
                       DatasetId::kXmark, DatasetId::kPsd,
                       DatasetId::kCatalog}) {
    Document doc = GenerateDataset(id, 5000, 7);
    EXPECT_GE(doc.element_count(), 5000) << DatasetName(id);
    EXPECT_LE(doc.element_count(), 5400) << DatasetName(id);
  }
}

TEST(GeneratorTest, DepthProfilesMatchTable1Shape) {
  // Table 1 orders the datasets by structural complexity: DBLP shallow
  // (max 5, avg 3.0), XMark deepest (max 12, avg 5.56).
  DocumentStats dblp = ComputeStats(GenerateDblp(20000, 1));
  DocumentStats swiss = ComputeStats(GenerateSwissProt(20000, 1));
  DocumentStats xmark = ComputeStats(GenerateXmark(20000, 1));
  DocumentStats psd = ComputeStats(GeneratePsd(20000, 1));
  DocumentStats catalog = ComputeStats(GenerateCatalog(20000, 1));

  EXPECT_LE(dblp.max_depth, 5);
  EXPECT_NEAR(dblp.average_depth, 3.0, 0.5);
  EXPECT_LE(swiss.max_depth, 6);
  EXPECT_NEAR(swiss.average_depth, 4.39, 0.8);
  EXPECT_GE(xmark.max_depth, 10);
  EXPECT_LE(xmark.max_depth, 13);
  EXPECT_NEAR(xmark.average_depth, 5.56, 1.0);
  EXPECT_LE(psd.max_depth, 7);
  EXPECT_NEAR(psd.average_depth, 5.45, 1.5);  // scaled-down generator
  EXPECT_LE(catalog.max_depth, 8);
  EXPECT_NEAR(catalog.average_depth, 5.65, 1.6);  // scaled-down generator

  // Relative complexity ordering: DBLP simplest.
  EXPECT_LT(dblp.average_depth, swiss.average_depth);
  EXPECT_LT(dblp.max_depth, xmark.max_depth);
}

TEST(FbIndexTest, HandComputedPartition) {
  // r(a(c), a(c), b): classes {r}, {a,a}, {b}, {c,c} → size 3 + root...
  auto d = ParseXml("<r><a><c/></a><a><c/></a><b/></r>");
  ASSERT_TRUE(d.ok());
  FbIndex idx(d.value());
  EXPECT_EQ(idx.size(), 4);  // r, a-extent, c-extent, b (virtual root excl.)
  const Document& doc = d.value();
  NodeId a1 = doc.first_child(doc.document_element());
  NodeId a2 = doc.next_sibling(a1);
  EXPECT_EQ(idx.ClassOf(a1), idx.ClassOf(a2));
  EXPECT_EQ(idx.ExtentSize(idx.ClassOf(a1)), 2);
  NodeId b = doc.next_sibling(a2);
  EXPECT_NE(idx.ClassOf(a1), idx.ClassOf(b));
}

TEST(FbIndexTest, ForwardSplitsDifferentChildSets) {
  // Two a's with different children must split (forward stability).
  auto d = ParseXml("<r><a><x/></a><a><y/></a></r>");
  ASSERT_TRUE(d.ok());
  FbIndex idx(d.value());
  const Document& doc = d.value();
  NodeId a1 = doc.first_child(doc.document_element());
  NodeId a2 = doc.next_sibling(a1);
  EXPECT_NE(idx.ClassOf(a1), idx.ClassOf(a2));
}

TEST(FbIndexTest, BackwardSplitsDifferentParents) {
  auto d = ParseXml("<r><p><x/></p><q><x/></q></r>");
  ASSERT_TRUE(d.ok());
  FbIndex idx(d.value());
  const Document& doc = d.value();
  NodeId p = doc.first_child(doc.document_element());
  NodeId q = doc.next_sibling(p);
  EXPECT_NE(idx.ClassOf(doc.first_child(p)), idx.ClassOf(doc.first_child(q)));
}

TEST(FbIndexTest, ExtentsPartitionTheDocument) {
  Document doc = GenerateDataset(DatasetId::kSwissProt, 3000, 3);
  FbIndex idx(doc);
  int64_t total = 0;
  for (int64_t c = 0; c <= idx.size(); ++c) {
    total += idx.ExtentSize(static_cast<int32_t>(c));
  }
  EXPECT_EQ(total, doc.element_count() + 1);  // + the virtual root
}

TEST(FbIndexTest, RelativeSizesFollowTable1) {
  // Table 1: the F/B index of DBLP/Catalog is tiny relative to the
  // document; SwissProt's and XMark's are much larger.
  Document dblp = GenerateDblp(8000, 3);
  Document xmark = GenerateXmark(8000, 3);
  Document catalog = GenerateCatalog(8000, 3);
  double r_dblp = static_cast<double>(FbIndex(dblp).size()) /
                  static_cast<double>(dblp.element_count());
  double r_xmark = static_cast<double>(FbIndex(xmark).size()) /
                   static_cast<double>(xmark.element_count());
  double r_catalog = static_cast<double>(FbIndex(catalog).size()) /
                     static_cast<double>(catalog.element_count());
  EXPECT_LT(r_catalog, r_xmark);
  EXPECT_LT(r_dblp, r_xmark);
}

}  // namespace
}  // namespace xmlsel
