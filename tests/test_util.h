// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Shared test helpers: random documents, random queries, and an
// independent brute-force oracle (deliberately implemented differently
// from baseline/exact.cc so the two can cross-validate).

#ifndef XMLSEL_TESTS_TEST_UTIL_H_
#define XMLSEL_TESTS_TEST_UTIL_H_

#include <string>
#include <vector>

#include "data/generator.h"
#include "query/ast.h"
#include "xml/document.h"

namespace xmlsel {
namespace testing_util {

/// Random document with up to `max_elements` elements over labels
/// a, b, c, … (label_count of them). `depth_bias` ∈ (0,1): higher means
/// deeper trees.
inline Document RandomDocument(Rng* rng, int64_t max_elements,
                               int32_t label_count, double depth_bias) {
  Document doc;
  std::vector<NodeId> pool;
  std::string names = "abcdefghijklmnop";
  auto label = [&](int64_t i) {
    return std::string(1, names[static_cast<size_t>(i)]);
  };
  NodeId root = doc.AppendChild(doc.virtual_root(),
                                label(rng->Uniform(0, label_count - 1)));
  pool.push_back(root);
  int64_t n = rng->Uniform(1, max_elements);
  for (int64_t i = 1; i < n; ++i) {
    // Pick an attach point: recently added nodes are favoured when
    // depth_bias is high.
    size_t idx;
    if (rng->Chance(depth_bias)) {
      idx = pool.size() - 1 -
            static_cast<size_t>(rng->Uniform(
                0, std::min<int64_t>(4, static_cast<int64_t>(pool.size()) -
                                            1)));
    } else {
      idx = static_cast<size_t>(
          rng->Uniform(0, static_cast<int64_t>(pool.size()) - 1));
    }
    NodeId parent = pool[idx];
    pool.push_back(
        doc.AppendChild(parent, label(rng->Uniform(0, label_count - 1))));
  }
  return doc;
}

/// Random forward-only query over the document's labels. May be
/// unsatisfiable (no witnesses used) — good for exercising zero counts.
inline Query RandomQuery(Rng* rng, const Document& doc, int32_t max_nodes,
                         bool with_order_axes) {
  Query q;
  int32_t n = static_cast<int32_t>(rng->Uniform(1, max_nodes));
  std::vector<int32_t> nodes;
  LabelId max_label = doc.names().size() - 1;
  auto random_test = [&]() -> LabelId {
    if (rng->Chance(0.15)) return kWildcardTest;
    return static_cast<LabelId>(rng->Uniform(1, max_label));
  };
  auto random_axis = [&]() -> Axis {
    int64_t r = rng->Uniform(0, with_order_axes ? 5 : 3);
    switch (r) {
      case 0:
        return Axis::kChild;
      case 1:
        return Axis::kDescendant;
      case 2:
        return Axis::kDescendantOrSelf;
      case 3:
        return Axis::kSelf;
      case 4:
        return Axis::kFollowingSibling;
      default:
        return Axis::kFollowing;
    }
  };
  // First node hangs off the root with child or descendant.
  nodes.push_back(q.AddNode(
      q.root(), rng->Chance(0.3) ? Axis::kChild : Axis::kDescendant,
      random_test()));
  for (int32_t i = 1; i < n; ++i) {
    int32_t parent = nodes[static_cast<size_t>(
        rng->Uniform(0, static_cast<int64_t>(nodes.size()) - 1))];
    nodes.push_back(q.AddNode(parent, random_axis(), random_test()));
  }
  q.SetMatchNode(nodes[static_cast<size_t>(
      rng->Uniform(0, static_cast<int64_t>(nodes.size()) - 1))]);
  q.Validate();
  return q;
}

/// Independent brute-force |Q(D)|: explicit axis-set scans and recursive
/// embedding search. Exponential in the worst case — small inputs only.
inline int64_t NaiveCount(const Document& doc, const Query& query) {
  std::vector<NodeId> all = doc.SubtreeNodes(doc.virtual_root());
  // Document-order positions and subtree intervals for `following`.
  std::vector<int64_t> pos(static_cast<size_t>(doc.arena_size()), -1);
  for (size_t i = 0; i < all.size(); ++i) {
    pos[static_cast<size_t>(all[i])] = static_cast<int64_t>(i);
  }
  std::vector<int64_t> end(static_cast<size_t>(doc.arena_size()), -1);
  for (auto it = all.rbegin(); it != all.rend(); ++it) {
    int64_t e = pos[static_cast<size_t>(*it)] + 1;
    for (NodeId c = doc.first_child(*it); c != kNullNode;
         c = doc.next_sibling(c)) {
      e = std::max(e, end[static_cast<size_t>(c)]);
    }
    end[static_cast<size_t>(*it)] = e;
  }
  auto is_ancestor = [&](NodeId anc, NodeId v) {
    for (NodeId u = doc.parent(v); u != kNullNode; u = doc.parent(u)) {
      if (u == anc) return true;
    }
    return false;
  };
  auto in_axis = [&](NodeId u, NodeId v, Axis axis) {
    switch (axis) {
      case Axis::kChild:
        return doc.parent(u) == v;
      case Axis::kDescendant:
        return is_ancestor(v, u);
      case Axis::kDescendantOrSelf:
        return u == v || is_ancestor(v, u);
      case Axis::kSelf:
        return u == v;
      case Axis::kFollowingSibling:
        return doc.parent(u) == doc.parent(v) && u != v &&
               pos[static_cast<size_t>(u)] > pos[static_cast<size_t>(v)] &&
               v != doc.virtual_root();
      case Axis::kFollowing:
        return pos[static_cast<size_t>(u)] >= end[static_cast<size_t>(v)];
      default:
        XMLSEL_CHECK(false);
        return false;
    }
  };
  auto test_ok = [&](int32_t qn, NodeId v) {
    LabelId t = query.node(qn).test;
    if (t == kWildcardTest) return doc.label(v) > 0;
    return doc.label(v) == t;
  };

  // embeddable(q, v): the subquery rooted at q embeds with h(q) = v.
  std::vector<std::vector<int8_t>> memo(
      static_cast<size_t>(query.size()),
      std::vector<int8_t>(static_cast<size_t>(doc.arena_size()), -1));
  auto embeddable = [&](auto&& self, int32_t qn, NodeId v) -> bool {
    int8_t& m = memo[static_cast<size_t>(qn)][static_cast<size_t>(v)];
    if (m != -1) return m == 1;
    bool ok = test_ok(qn, v) || (qn == query.root() && v == doc.virtual_root());
    if (qn == query.root()) ok = v == doc.virtual_root();
    if (ok) {
      for (int32_t c : query.node(qn).children) {
        bool found = false;
        for (NodeId u : all) {
          if (in_axis(u, v, query.node(c).axis) && self(self, c, u)) {
            found = true;
            break;
          }
        }
        if (!found) {
          ok = false;
          break;
        }
      }
    }
    m = ok ? 1 : 0;
    return ok;
  };

  // Count distinct h(m_Q) over embeddings: search down the spine.
  std::vector<int32_t> spine;
  for (int32_t qn = query.match_node(); qn != -1;
       qn = query.node(qn).parent) {
    spine.push_back(qn);
  }
  std::vector<int32_t> rev(spine.rbegin(), spine.rend());

  int64_t count = 0;
  for (NodeId target : all) {
    if (target == doc.virtual_root()) continue;
    // Exists an embedding of the whole query with h(m_Q) = target?
    auto search = [&](auto&& self, size_t i, NodeId v) -> bool {
      // v is the image of rev[i]; check its off-spine subqueries.
      if (!(i == 0 ? v == doc.virtual_root() : test_ok(rev[i], v))) {
        return false;
      }
      for (int32_t c : query.node(rev[i]).children) {
        if (i + 1 < rev.size() && c == rev[i + 1]) continue;
        bool found = false;
        for (NodeId u : all) {
          if (in_axis(u, v, query.node(c).axis) &&
              embeddable(embeddable, c, u)) {
            found = true;
            break;
          }
        }
        if (!found) return false;
      }
      if (i + 1 == rev.size()) return v == target;
      for (NodeId u : all) {
        if (in_axis(u, v, query.node(rev[i + 1]).axis)) {
          if (i + 2 == rev.size() && u != target) continue;
          if (self(self, i + 1, u)) return true;
        }
      }
      return false;
    };
    if (search(search, 0, doc.virtual_root())) ++count;
  }
  return count;
}

}  // namespace testing_util
}  // namespace xmlsel

#endif  // XMLSEL_TESTS_TEST_UTIL_H_
