// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Correctness of the counting tree automaton (Algorithms 1 and 2): the
// document-level run must agree with two independent oracles — the
// O(|Q|·|D|) exact evaluator and the brute-force embedding search — on
// hand-picked queries (including the paper's Figure 2 example) and on
// randomized documents and queries over all forward axes.

#include <gtest/gtest.h>

#include "automaton/doc_eval.h"
#include "baseline/exact.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace xmlsel {
namespace {

int64_t AutomatonCount(const Document& doc, const Query& q) {
  Result<CompiledQuery> cq = CompiledQuery::Compile(q);
  XMLSEL_CHECK(cq.ok());
  return EvaluateOnDocument(cq.value(), doc).count;
}

int64_t ParseAndCount(const Document& doc, std::string_view xpath,
                      NameTable* names) {
  Result<Query> q = ParseQuery(xpath, names);
  XMLSEL_CHECK(q.ok());
  return AutomatonCount(doc, q.value());
}

TEST(AutomatonTest, Figure2Example) {
  // Document of Figure 2(c): a(b(d(b(c))), b(c)). Query //a//b/c-style
  // twig counting c-nodes; the paper's run yields 2.
  auto r = ParseXml("<a><b><d><b><c/></b></d></b><b><c/></b></a>");
  ASSERT_TRUE(r.ok());
  Document doc = std::move(r).value();
  EXPECT_EQ(ParseAndCount(doc, "//a//b/c", &doc.names()), 2);
  EXPECT_EQ(ParseAndCount(doc, "//b/c", &doc.names()), 2);
  EXPECT_EQ(ParseAndCount(doc, "//b", &doc.names()), 3);
  EXPECT_EQ(ParseAndCount(doc, "/a/b", &doc.names()), 2);
  EXPECT_EQ(ParseAndCount(doc, "/a/b/c", &doc.names()), 1);
}

TEST(AutomatonTest, PredicatesRestrictMatches) {
  auto r = ParseXml(
      "<lib><book><author/><title/></book><book><title/></book>"
      "<journal><title/></journal></lib>");
  ASSERT_TRUE(r.ok());
  Document doc = std::move(r).value();
  NameTable* names = &doc.names();
  EXPECT_EQ(ParseAndCount(doc, "//book", names), 2);
  EXPECT_EQ(ParseAndCount(doc, "//book[./author]", names), 1);
  EXPECT_EQ(ParseAndCount(doc, "//book[./author and ./title]", names), 1);
  EXPECT_EQ(ParseAndCount(doc, "//*[./title]", names), 3);
  EXPECT_EQ(ParseAndCount(doc, "/lib[.//author]//title", names), 3);
  EXPECT_EQ(ParseAndCount(doc, "//book[./nosuch]", names), 0);
}

TEST(AutomatonTest, DoubleCountingIsPrevented) {
  // One c under a chain of two b's: //b//c must count c once, despite two
  // embeddings (the paper's §5.2 zeroing example).
  auto r = ParseXml("<a><b><b><c/></b></b></a>");
  ASSERT_TRUE(r.ok());
  Document doc = std::move(r).value();
  EXPECT_EQ(ParseAndCount(doc, "//b//c", &doc.names()), 1);
  EXPECT_EQ(ParseAndCount(doc, "//b[.//c]", &doc.names()), 2);
}

TEST(AutomatonTest, OrderSensitiveAxes) {
  auto r = ParseXml(
      "<r><a/><b/><a/><c><a/><b/></c><b/></r>");
  ASSERT_TRUE(r.ok());
  Document doc = std::move(r).value();
  NameTable* names = &doc.names();
  // Following siblings of the first 'a': b, a, c, b — three... two b's.
  EXPECT_EQ(ParseAndCount(doc, "/r/a/following-sibling::b", names), 2);
  // Everything following any 'a' (document order).
  EXPECT_EQ(ParseAndCount(doc, "//a/following::b", names), 3);
  EXPECT_EQ(ParseAndCount(doc, "//c/following::b", names), 1);
  EXPECT_EQ(ParseAndCount(doc, "//b[./following-sibling::a]", names), 1);
  EXPECT_EQ(ParseAndCount(doc, "//a[./following::c]", names), 2);
}

TEST(AutomatonTest, RestoreCountsTransfersThroughDroppedPairs) {
  // The b2→d transition of Figure 2: a child-axis subquery match must
  // transfer its count to the deeper descendant pair when its parent
  // label breaks the chain.
  auto r = ParseXml("<x><d><b><c/></b></d><a><b><c/></b></a></x>");
  ASSERT_TRUE(r.ok());
  Document doc = std::move(r).value();
  // //a/b/c: only the second c qualifies; the first b/c climbs through d.
  EXPECT_EQ(ParseAndCount(doc, "//a/b/c", &doc.names()), 1);
  EXPECT_EQ(ParseAndCount(doc, "//b/c", &doc.names()), 2);
}

TEST(AutomatonTest, SelfAxis) {
  auto r = ParseXml("<a><b/><c/></a>");
  ASSERT_TRUE(r.ok());
  Document doc = std::move(r).value();
  EXPECT_EQ(ParseAndCount(doc, "//b/self::b", &doc.names()), 1);
  EXPECT_EQ(ParseAndCount(doc, "//b/self::c", &doc.names()), 0);
  EXPECT_EQ(ParseAndCount(doc, "//*[./self::b]", &doc.names()), 1);
}

// Contract under order axes: the strict transition only accepts
// following-witnesses already visible in the right context, which makes
// it a guaranteed lower bound; the order-relaxed query bounds from above.
// Order-free queries are exact.
void CheckAgainstOracles(const Document& doc, const ExactEvaluator& oracle,
                         const Query& q) {
  int64_t expected = oracle.Count(q);
  ASSERT_EQ(testing_util::NaiveCount(doc, q), expected)
      << "oracles disagree on " << q.ToString(doc.names());
  int64_t strict = AutomatonCount(doc, q);
  if (!HasOrderAxes(q)) {
    ASSERT_EQ(strict, expected)
        << "automaton wrong on " << q.ToString(doc.names());
    return;
  }
  ASSERT_LE(strict, expected)
      << "lower bound violated on " << q.ToString(doc.names());
  int64_t relaxed = AutomatonCount(doc, RelaxOrderConstraints(q));
  ASSERT_GE(relaxed, expected)
      << "upper bound violated on " << q.ToString(doc.names());
}

TEST(AutomatonTest, AgreesWithBothOraclesOnCornerDocs) {
  for (const char* xml :
       {"<a/>", "<a><a><a/></a></a>", "<a><b/><b/><b/></a>",
        "<a><b><a><b/></a></b></a>"}) {
    auto r = ParseXml(xml);
    ASSERT_TRUE(r.ok());
    Document doc = std::move(r).value();
    ExactEvaluator oracle(doc);
    Rng rng(99);
    for (int i = 0; i < 30; ++i) {
      Query q = testing_util::RandomQuery(&rng, doc, 5, true);
      CheckAgainstOracles(doc, oracle, q);
    }
  }
}

/// The big randomized cross-validation: automaton == exact == brute force
/// over random documents and random queries with all forward axes.
class AutomatonRandomTest : public ::testing::TestWithParam<int> {};

TEST_P(AutomatonRandomTest, MatchesOracles) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919);
  for (int iter = 0; iter < 12; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, 40, 3, 0.5);
    ExactEvaluator oracle(doc);
    for (int k = 0; k < 12; ++k) {
      Query q = testing_util::RandomQuery(&rng, doc, 6, true);
      CheckAgainstOracles(doc, oracle, q);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomatonRandomTest,
                         ::testing::Range(1, 13));

TEST(CompiledQueryTest, RejectsOversizedAndReverseQueries) {
  Query q;
  int32_t cur = q.root();
  for (int i = 0; i < kMaxQueryNodes; ++i) {
    cur = q.AddNode(cur, Axis::kChild, kWildcardTest);
  }
  q.SetMatchNode(1);
  EXPECT_FALSE(CompiledQuery::Compile(q).ok());

  Query rev;
  int32_t a = rev.AddNode(rev.root(), Axis::kChild, kWildcardTest);
  rev.AddNode(a, Axis::kParent, kWildcardTest);
  rev.SetMatchNode(a);
  EXPECT_FALSE(CompiledQuery::Compile(rev).ok());
}

}  // namespace
}  // namespace xmlsel
