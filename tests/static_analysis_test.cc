// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Negative-compile harness for the static-analysis layer (DESIGN.md
// "Verification & static analysis"). Each fixture under
// tests/static_analysis/ seeds exactly one violation of a project
// invariant; this test asserts the corresponding tool REJECTS it:
//
//   * Clang Thread Safety Analysis rejects the tsa_* fixtures
//     (unguarded writes, REQUIRES/EXCLUDES violations, leaked locks,
//     unpinned RCU reads). Needs clang++; skipped when absent.
//   * The host compiler rejects a dropped Status under
//     -Werror=unused-result ([[nodiscard]] on Status/Result) — works on
//     GCC and Clang alike.
//   * tools/xmlsel_lint rejects the lint_tree fixtures, one per rule.
//
// Every leg carries a positive control (a clean fixture that must PASS)
// so broken flags or include paths fail the harness instead of making
// the "expected failure" assertions vacuously true.
//
// Paths come in via compile definitions: XMLSEL_SOURCE_DIR (repo root),
// XMLSEL_LINT_BINARY ($<TARGET_FILE:xmlsel_lint>), XMLSEL_HOST_CXX
// (CMAKE_CXX_COMPILER).

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include <sys/wait.h>

namespace {

const char kRoot[] = XMLSEL_SOURCE_DIR;
const char kLint[] = XMLSEL_LINT_BINARY;
const char kHostCxx[] = XMLSEL_HOST_CXX;

struct RunResult {
  int exit_code = -1;
  std::string output;
};

/// Runs `cmd` through the shell, capturing stdout+stderr and the exit
/// code. A command that dies on a signal reports exit_code -1.
RunResult Run(const std::string& cmd) {
  RunResult r;
  std::string log = testing::TempDir() + "/static_analysis_cmd.log";
  std::string full = cmd + " > " + log + " 2>&1";
  int raw = std::system(full.c_str());
  r.exit_code = (raw != -1 && WIFEXITED(raw)) ? WEXITSTATUS(raw) : -1;
  std::ifstream in(log);
  std::ostringstream buf;
  buf << in.rdbuf();
  r.output = buf.str();
  return r;
}

std::string Fixture(const std::string& name) {
  return std::string(kRoot) + "/tests/static_analysis/" + name;
}

bool HaveClang() {
  static const bool have =
      Run("clang++ --version").exit_code == 0;
  return have;
}

/// clang++ syntax-only compile with the ThreadSafety build type's warning
/// set and the project include paths.
RunResult ThreadSafetyCompile(const std::string& file) {
  return Run(std::string("clang++ -std=c++20 -fsyntax-only -Wthread-safety "
                         "-Wthread-safety-beta -Werror -I ") +
             kRoot + "/src -I " + kRoot + " " + file);
}

class ThreadSafetyTest : public testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (!HaveClang()) {
      GTEST_SKIP() << "clang++ not on PATH; thread-safety negative-compile "
                      "checks need Clang";
    }
  }
};

TEST_P(ThreadSafetyTest, SeededViolationIsRejected) {
  RunResult r = ThreadSafetyCompile(Fixture(GetParam()));
  EXPECT_NE(r.exit_code, 0)
      << GetParam() << " compiled clean; its seeded thread-safety "
      << "violation went undetected:\n"
      << r.output;
  EXPECT_NE(r.output.find("thread-safety"), std::string::npos)
      << GetParam() << " failed for a reason other than -Wthread-safety:\n"
      << r.output;
}

INSTANTIATE_TEST_SUITE_P(Fixtures, ThreadSafetyTest,
                         testing::Values("tsa_unguarded_write.cc",
                                         "tsa_requires_unheld.cc",
                                         "tsa_excludes_held.cc",
                                         "tsa_leaked_lock.cc",
                                         "tsa_rcu_unpinned.cc"));

TEST(ThreadSafetyControlTest, CleanFixtureCompiles) {
  if (!HaveClang()) {
    GTEST_SKIP() << "clang++ not on PATH";
  }
  RunResult r = ThreadSafetyCompile(Fixture("tsa_clean.cc"));
  EXPECT_EQ(r.exit_code, 0)
      << "positive control failed — the harness flags or include paths "
      << "are broken, so the negative tests above prove nothing:\n"
      << r.output;
}

// ---------------------------------------------------------------------------
// [[nodiscard]] — host compiler, works under GCC too
// ---------------------------------------------------------------------------

RunResult NodiscardCompile(const std::string& file) {
  return Run(std::string(kHostCxx) +
             " -std=c++20 -fsyntax-only -Werror=unused-result -I " + kRoot +
             "/src -I " + kRoot + " " + file);
}

TEST(NodiscardTest, DroppedStatusIsRejected) {
  RunResult r = NodiscardCompile(Fixture("nodiscard_dropped.cc"));
  EXPECT_NE(r.exit_code, 0)
      << "dropping a Status compiled clean despite [[nodiscard]]:\n"
      << r.output;
  EXPECT_NE(r.output.find("unused-result"), std::string::npos)
      << "compile failed for a reason other than -Wunused-result:\n"
      << r.output;
}

TEST(NodiscardTest, ConsumedStatusCompiles) {
  RunResult r = NodiscardCompile(Fixture("nodiscard_ok.cc"));
  EXPECT_EQ(r.exit_code, 0)
      << "positive control failed — flags or include paths are broken:\n"
      << r.output;
}

// ---------------------------------------------------------------------------
// xmlsel_lint — one fixture per rule
// ---------------------------------------------------------------------------

RunResult Lint(const std::string& rel_file) {
  std::string tree = Fixture("lint_tree");
  return Run(std::string(kLint) + " --root " + tree + " " + tree + "/" +
             rel_file);
}

struct LintCase {
  const char* file;
  const char* rule;
};

class LintTest : public testing::TestWithParam<LintCase> {};

TEST_P(LintTest, SeededViolationIsReported) {
  const LintCase& c = GetParam();
  RunResult r = Lint(c.file);
  EXPECT_EQ(r.exit_code, 1)
      << c.file << " should lint with findings (exit 1), got "
      << r.exit_code << ":\n"
      << r.output;
  EXPECT_NE(r.output.find(std::string("[") + c.rule + "]"),
            std::string::npos)
      << c.file << " did not report rule '" << c.rule << "':\n"
      << r.output;
}

INSTANTIATE_TEST_SUITE_P(
    Fixtures, LintTest,
    testing::Values(
        LintCase{"src/kernel/hot_alloc.cc", "hot-alloc"},
        LintCase{"src/serving/lock_free.cc", "lock-free-read"},
        LintCase{"src/kernel/raw_mutex.cc", "raw-mutex"},
        LintCase{"src/serving/banned.cc", "banned-function"},
        LintCase{"src/storage/cast.cc", "unguarded-cast"},
        LintCase{"src/kernel/dropped.cc", "discarded-status"},
        LintCase{"src/kernel/bad_guard.h", "include-guard"},
        LintCase{"src/kernel/leaky.h", "using-namespace"},
        LintCase{"src/kernel/leaky.h", "iostream-header"}),
    [](const testing::TestParamInfo<LintCase>& info) {
      std::string name = info.param.rule;
      for (char& ch : name) {
        if (ch == '-') ch = '_';
      }
      return name + "_" + std::to_string(info.index);
    });

TEST(LintControlTest, CleanFixturePasses) {
  RunResult r = Lint("src/kernel/clean.cc");
  EXPECT_EQ(r.exit_code, 0)
      << "positive control failed — the lint invocation is broken, so "
      << "the seeded-violation tests above prove nothing:\n"
      << r.output;
}

TEST(LintControlTest, AllowCommentSuppressesFinding) {
  // clean.cc contains a hot-path push_back under an allow(hot-alloc)
  // comment; the control above already proves it lints clean. This test
  // pins the complementary fact: the same shape WITHOUT the comment is
  // a finding (hot_alloc.cc), so the pass is the comment's doing.
  RunResult bad = Lint("src/kernel/hot_alloc.cc");
  EXPECT_EQ(bad.exit_code, 1);
  RunResult good = Lint("src/kernel/clean.cc");
  EXPECT_EQ(good.exit_code, 0);
}

}  // namespace
