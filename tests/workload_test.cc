// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Tests for the §8.1 workload generator and the experiment runner.

#include <gtest/gtest.h>

#include "baseline/exact.h"
#include "data/generator.h"
#include "estimator/estimator.h"
#include "workload/query_gen.h"
#include "workload/runner.h"

namespace xmlsel {
namespace {

TEST(QueryGenTest, ProducesRequestedWorkload) {
  Document doc = GenerateDataset(DatasetId::kXmark, 3000, 11);
  WorkloadOptions opts;
  opts.count = 50;
  opts.seed = 5;
  std::vector<Query> queries = GenerateWorkload(doc, opts);
  EXPECT_EQ(queries.size(), 50u);
  for (const Query& q : queries) {
    EXPECT_GE(q.size() - 1, opts.min_nodes);  // minus the virtual root
    EXPECT_LE(q.size() - 1, opts.max_nodes);
    EXPECT_TRUE(q.ForwardOnly());
  }
}

TEST(QueryGenTest, EveryQueryHasPositiveSelectivity) {
  Document doc = GenerateDataset(DatasetId::kSwissProt, 2000, 13);
  ExactEvaluator oracle(doc);
  WorkloadOptions opts;
  opts.count = 40;
  opts.seed = 9;
  for (const Query& q : GenerateWorkload(doc, opts)) {
    EXPECT_GE(oracle.Count(q), 1) << q.ToString(doc.names());
  }
}

TEST(QueryGenTest, OrderAxisWorkloadsAreSatisfiable) {
  Document doc = GenerateDataset(DatasetId::kXmark, 2000, 17);
  ExactEvaluator oracle(doc);
  WorkloadOptions opts;
  opts.count = 30;
  opts.order_axis_prob = 0.5;
  opts.seed = 21;
  std::vector<Query> queries = GenerateWorkload(doc, opts);
  int32_t with_order = 0;
  for (const Query& q : queries) {
    for (int32_t i = 1; i < q.size(); ++i) {
      if (q.node(i).axis == Axis::kFollowing ||
          q.node(i).axis == Axis::kFollowingSibling) {
        ++with_order;
        break;
      }
    }
    EXPECT_GE(oracle.Count(q), 1) << q.ToString(doc.names());
  }
  EXPECT_GT(with_order, 5);  // the knob actually produces order axes
}

TEST(QueryGenTest, DeterministicInSeed) {
  Document doc = GenerateDataset(DatasetId::kDblp, 1000, 3);
  WorkloadOptions opts;
  opts.count = 10;
  auto a = GenerateWorkload(doc, opts);
  auto b = GenerateWorkload(doc, opts);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ToString(doc.names()), b[i].ToString(doc.names()));
  }
}

TEST(RunnerTest, AggregatesErrorsAndChecksBounds) {
  Document doc = GenerateDataset(DatasetId::kCatalog, 1500, 3);
  SynopsisOptions sopts;
  sopts.kappa = 10;
  SelectivityEstimator est = SelectivityEstimator::Build(doc, sopts);
  ExactEvaluator oracle(doc);
  WorkloadOptions wopts;
  wopts.count = 25;
  std::vector<Query> queries = GenerateWorkload(doc, wopts);
  WorkloadResult result = RunWorkload(&est, oracle, queries, doc.names());
  EXPECT_EQ(result.queries.size(), queries.size());
  EXPECT_EQ(result.bound_violations, 0);  // guaranteed bounds
  EXPECT_GE(result.avg_lower_rel_error, 0.0);
  EXPECT_GE(result.avg_upper_rel_error, 0.0);
}

TEST(RunnerTest, LosslessSynopsisHasZeroError) {
  Document doc = GenerateDataset(DatasetId::kDblp, 1200, 3);
  SynopsisOptions sopts;
  sopts.kappa = 0;
  SelectivityEstimator est = SelectivityEstimator::Build(doc, sopts);
  ExactEvaluator oracle(doc);
  WorkloadOptions wopts;
  wopts.count = 20;
  WorkloadResult result =
      RunWorkload(&est, oracle, GenerateWorkload(doc, wopts), doc.names());
  EXPECT_DOUBLE_EQ(result.avg_lower_rel_error, 0.0);
  EXPECT_DOUBLE_EQ(result.avg_upper_rel_error, 0.0);
}

TEST(RunnerTest, ErrorGrowsWithKappa) {
  // §8.1's headline trend: more deleted patterns → larger error.
  Document doc = GenerateDataset(DatasetId::kXmark, 3000, 29);
  ExactEvaluator oracle(doc);
  WorkloadOptions wopts;
  wopts.count = 30;
  std::vector<Query> queries = GenerateWorkload(doc, wopts);
  double prev_width = -1.0;
  for (int32_t kappa : {0, 1 << 20}) {
    SynopsisOptions sopts;
    sopts.kappa = kappa;
    SelectivityEstimator est = SelectivityEstimator::Build(doc, sopts);
    WorkloadResult r = RunWorkload(&est, oracle, queries, doc.names());
    double width = r.avg_lower_rel_error + r.avg_upper_rel_error;
    EXPECT_GE(width, prev_width);
    prev_width = width;
  }
  EXPECT_GT(prev_width, 0.0);  // fully lossy synopsis cannot stay exact
}

}  // namespace
}  // namespace xmlsel
