// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Tests for the packed synopsis storage (§7): bit I/O, encode/decode
// round trips (lossless and lossy grammars), the space advantage over the
// pointer representation, and the dynamic blocked store.

#include <gtest/gtest.h>

#include <cstring>

#include "data/generator.h"
#include "estimator/synopsis.h"
#include "grammar/bplex.h"
#include "grammar/lossy.h"
#include "storage/bitio.h"
#include "storage/dynamic_store.h"
#include "storage/mapped.h"
#include "storage/packed.h"
#include "tests/test_util.h"
#include "verify/verify.h"

namespace xmlsel {
namespace {

TEST(BitIoTest, BitsRoundTrip) {
  BitWriter w;
  w.WriteBits(0b101, 3);
  w.WriteBits(0, 1);
  w.WriteBits(0xdeadbeef, 32);
  w.WriteUnary(0);
  w.WriteUnary(5);
  w.WriteVarint(0);
  w.WriteVarint(127);
  w.WriteVarint(12345678901234ull);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_EQ(r.ReadBits(3).value(), 0b101u);
  EXPECT_EQ(r.ReadBits(1).value(), 0u);
  EXPECT_EQ(r.ReadBits(32).value(), 0xdeadbeefu);
  EXPECT_EQ(r.ReadUnary().value(), 0);
  EXPECT_EQ(r.ReadUnary().value(), 5);
  EXPECT_EQ(r.ReadVarint().value(), 0u);
  EXPECT_EQ(r.ReadVarint().value(), 127u);
  EXPECT_EQ(r.ReadVarint().value(), 12345678901234ull);
}

TEST(BitIoTest, TruncationIsCorruption) {
  BitWriter w;
  w.WriteBits(0xff, 8);
  std::vector<uint8_t> bytes = w.Finish();
  BitReader r(bytes);
  EXPECT_TRUE(r.ReadBits(8).ok());
  EXPECT_EQ(r.ReadBits(1).status().code(), StatusCode::kCorruption);
}

TEST(BitIoTest, BitsFor) {
  EXPECT_EQ(BitsFor(0), 1);
  EXPECT_EQ(BitsFor(1), 1);
  EXPECT_EQ(BitsFor(2), 1);
  EXPECT_EQ(BitsFor(3), 2);
  EXPECT_EQ(BitsFor(4), 2);
  EXPECT_EQ(BitsFor(5), 3);
  EXPECT_EQ(BitsFor(1024), 10);
}

std::string Dump(const SltGrammar& g, const NameTable& names) {
  return g.ToString(names);
}

TEST(PackedTest, LosslessRoundTrip) {
  Rng rng(8);
  for (int iter = 0; iter < 10; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, 200, 4, 0.5);
    SltGrammar g = BplexCompress(doc);
    std::vector<uint8_t> bytes = EncodePacked(g, doc.names().size());
    Result<SltGrammar> back = DecodePacked(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(Dump(g, doc.names()), Dump(back.value(), doc.names()));
    EXPECT_TRUE(back.value().Expand(doc.names()).StructurallyEquals(doc));
  }
}

TEST(PackedTest, LossyRoundTripWithStars) {
  Document doc = GenerateDataset(DatasetId::kXmark, 2500, 5);
  SltGrammar lossless = BplexCompress(doc);
  for (int32_t kappa : {1, 5, 20, 1 << 20}) {
    LossyGrammar lossy = MakeLossy(lossless, kappa);
    std::vector<uint8_t> bytes =
        EncodePacked(lossy.grammar, doc.names().size());
    Result<SltGrammar> back = DecodePacked(bytes);
    ASSERT_TRUE(back.ok()) << back.status().ToString();
    EXPECT_EQ(Dump(lossy.grammar, doc.names()),
              Dump(back.value(), doc.names()));
  }
}

TEST(PackedTest, PackedBeatsPointerRepresentation) {
  Document doc = GenerateDataset(DatasetId::kDblp, 5000, 3);
  SltGrammar g = BplexCompress(doc);
  int64_t packed = PackedEncodedSize(g, doc.names().size());
  int64_t pointers = PointerRepresentationSize(g);
  EXPECT_LT(packed * 4, pointers);  // "slashes the space requirements"
}

TEST(PackedTest, GarbageIsRejectedNotCrashing) {
  std::vector<uint8_t> garbage = {0x12, 0x34, 0x56, 0x78, 0x9a};
  (void)DecodePacked(garbage);  // must not crash; may or may not decode
  std::vector<uint8_t> empty;
  EXPECT_FALSE(DecodePacked(empty).ok());
}

TEST(PackedTest, PerRuleEncodingsMatchTotalSize) {
  Document doc = GenerateDataset(DatasetId::kCatalog, 2000, 5);
  SltGrammar g = BplexCompress(doc);
  auto per_rule = EncodePackedPerRule(g, doc.names().size());
  EXPECT_EQ(static_cast<int32_t>(per_rule.size()), g.rule_count());
  int64_t total = 0;
  for (const auto& r : per_rule) total += static_cast<int64_t>(r.size());
  // Byte alignment costs at most one byte per rule vs the packed stream.
  EXPECT_LE(PackedEncodedSize(g, doc.names().size()),
            total + 64 /* header */);
}

TEST(DynamicStoreTest, InsertEraseReplaceKeepOrder) {
  DynamicSynopsisStore store(64);
  for (int i = 0; i < 100; ++i) {
    store.Insert(store.size(),
                 std::vector<uint8_t>(static_cast<size_t>(5 + i % 13),
                                      static_cast<uint8_t>(i)));
  }
  store.CheckInvariants();
  EXPECT_EQ(store.size(), 100);
  EXPECT_EQ(store.Get(7)[0], 7);
  store.Insert(7, std::vector<uint8_t>(9, 0xAB));
  EXPECT_EQ(store.Get(7)[0], 0xAB);
  EXPECT_EQ(store.Get(8)[0], 7);
  store.Erase(7);
  EXPECT_EQ(store.Get(7)[0], 7);
  store.Replace(0, std::vector<uint8_t>(3, 0xCD));
  EXPECT_EQ(store.Get(0)[0], 0xCD);
  store.CheckInvariants();
  EXPECT_GT(store.block_count(), 1);
}

TEST(DynamicStoreTest, ShrinksOnErase) {
  DynamicSynopsisStore store(64);
  for (int i = 0; i < 200; ++i) {
    store.Insert(store.size(), std::vector<uint8_t>(11, 1));
  }
  int64_t blocks_full = store.block_count();
  for (int i = 0; i < 190; ++i) {
    store.Erase(store.size() - 1);
  }
  store.CheckInvariants();
  EXPECT_LT(store.block_count(), blocks_full);
  EXPECT_EQ(store.size(), 10);
}

TEST(DynamicStoreTest, BulkLoadFromGrammar) {
  Document doc = GenerateDataset(DatasetId::kSwissProt, 1500, 9);
  SltGrammar g = BplexCompress(doc);
  DynamicSynopsisStore store =
      DynamicSynopsisStore::FromGrammar(g, doc.names().size(), 256);
  store.CheckInvariants();
  EXPECT_EQ(store.size(), g.rule_count());
  EXPECT_GE(store.occupied_bytes(), store.payload_bytes());
}

TEST(DynamicStoreTest, RandomizedInvariants) {
  Rng rng(77);
  DynamicSynopsisStore store(128);
  int64_t n = 0;
  for (int step = 0; step < 2000; ++step) {
    int64_t op = rng.Uniform(0, 2);
    if (op == 0 || n == 0) {
      store.Insert(rng.Uniform(0, n),
                   std::vector<uint8_t>(
                       static_cast<size_t>(rng.Uniform(1, 40)), 7));
      ++n;
    } else if (op == 1) {
      store.Erase(rng.Uniform(0, n - 1));
      --n;
    } else {
      store.Replace(rng.Uniform(0, n - 1),
                    std::vector<uint8_t>(
                        static_cast<size_t>(rng.Uniform(1, 40)), 9));
    }
    if (step % 100 == 0) store.CheckInvariants();
  }
  store.CheckInvariants();
  EXPECT_EQ(store.size(), n);
}

// --- Mapped-image corruption drills --------------------------------------
//
// Every malformed image must be rejected with a kCorruption diagnostic —
// never a crash, never UB (the suite runs under ASan/UBSan via
// tools/check.sh). The drills mutate a valid image byte-wise, exactly the
// failure model of a torn write or a bad disk.

Synopsis MappedFixtureSynopsis() {
  Document doc = GenerateDataset(DatasetId::kXmark, 900, 11);
  SynopsisOptions options;
  options.kappa = 10;
  return Synopsis::Build(doc, options);
}

std::vector<uint8_t> MappedFixtureImage() {
  static const std::vector<uint8_t> image =
      BuildMappedImage(MappedFixtureSynopsis());
  return image;
}

Status OpenStatus(std::vector<uint8_t> bytes, bool verify_checksum = false) {
  MappedOpenOptions options;
  options.verify_checksum = verify_checksum;
  Result<std::unique_ptr<MappedSynopsis>> r =
      MappedSynopsis::FromBuffer(std::move(bytes), options);
  return r.status();
}

TEST(MappedCorruptionTest, ValidImageOpens) {
  EXPECT_TRUE(OpenStatus(MappedFixtureImage(), true).ok());
}

TEST(MappedCorruptionTest, TruncationAtEveryStructuralBoundary) {
  std::vector<uint8_t> image = MappedFixtureImage();
  for (size_t keep :
       {size_t{0}, size_t{7}, size_t{100}, sizeof(MappedImageHeader) - 1,
        sizeof(MappedImageHeader), size_t{4096}, image.size() / 2,
        image.size() - 1}) {
    std::vector<uint8_t> cut(image.begin(),
                             image.begin() + static_cast<long>(keep));
    Status st = OpenStatus(std::move(cut));
    EXPECT_EQ(st.code(), StatusCode::kCorruption) << "keep=" << keep;
  }
}

TEST(MappedCorruptionTest, BadMagicAndVersionAreDiagnosed) {
  std::vector<uint8_t> image = MappedFixtureImage();
  std::vector<uint8_t> bad_magic = image;
  bad_magic[0] ^= 0xff;
  Status st = OpenStatus(std::move(bad_magic));
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("magic"), std::string::npos);

  std::vector<uint8_t> bad_version = image;
  bad_version[8] = 0x7f;  // header_.version low byte
  st = OpenStatus(std::move(bad_version));
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("version"), std::string::npos);
}

TEST(MappedCorruptionTest, OutOfBoundsSectionsAndDirectories) {
  std::vector<uint8_t> image = MappedFixtureImage();
  MappedImageHeader h;
  std::memcpy(&h, image.data(), sizeof(h));

  // Point a section past the end of the file.
  for (int s = 0; s < kMappedSectionCount; ++s) {
    std::vector<uint8_t> mutated = image;
    MappedImageHeader hm = h;
    hm.section_offset[s] = h.file_bytes + 1;
    std::memcpy(mutated.data(), &hm, sizeof(hm));
    EXPECT_EQ(OpenStatus(std::move(mutated)).code(), StatusCode::kCorruption)
        << "section " << s << " offset OOB";

    mutated = image;
    hm = h;
    hm.section_bytes[s] = h.file_bytes;  // length escapes from any offset
    std::memcpy(mutated.data(), &hm, sizeof(hm));
    EXPECT_EQ(OpenStatus(std::move(mutated)).code(), StatusCode::kCorruption)
        << "section " << s << " length OOB";
  }

  // Corrupt the first lossy directory entry: offset far outside payload.
  {
    std::vector<uint8_t> mutated = image;
    MappedRuleEntry e;
    std::memcpy(&e, mutated.data() + h.section_offset[kSecDir1], sizeof(e));
    e.offset = h.section_bytes[kSecPayload1] + 100;
    std::memcpy(mutated.data() + h.section_offset[kSecDir1], &e, sizeof(e));
    EXPECT_EQ(OpenStatus(std::move(mutated)).code(), StatusCode::kCorruption);
  }
  // Zero bit length is impossible (the rank prefix alone needs a bit).
  {
    std::vector<uint8_t> mutated = image;
    MappedRuleEntry e;
    std::memcpy(&e, mutated.data() + h.section_offset[kSecDir1], sizeof(e));
    e.bit_len = 0;
    std::memcpy(mutated.data() + h.section_offset[kSecDir1], &e, sizeof(e));
    EXPECT_EQ(OpenStatus(std::move(mutated)).code(), StatusCode::kCorruption);
  }
}

TEST(MappedCorruptionTest, DirectoryRankMismatchIsCaughtAtDecode) {
  std::vector<uint8_t> image = MappedFixtureImage();
  MappedImageHeader h;
  std::memcpy(&h, image.data(), sizeof(h));
  // Bump the recorded rank of lossy rule 0; opening still succeeds (the
  // directory is structurally plausible) but the first decode must flag
  // the stream/directory disagreement rather than serve a wrong rule.
  MappedRuleEntry e;
  std::memcpy(&e, image.data() + h.section_offset[kSecDir1], sizeof(e));
  e.rank += 1;
  std::memcpy(image.data() + h.section_offset[kSecDir1], &e, sizeof(e));
  Result<std::unique_ptr<MappedSynopsis>> opened =
      MappedSynopsis::FromBuffer(std::move(image));
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  const MappedSynopsis::Layer& lossy = opened.value()->lossy_layer();
  RuleEvalData d = lossy.Rule(0);
  EXPECT_FALSE(d.valid);
  EXPECT_EQ(lossy.error().code(), StatusCode::kCorruption);
}

TEST(MappedCorruptionTest, ChecksumCatchesPayloadFlips) {
  std::vector<uint8_t> image = MappedFixtureImage();
  MappedImageHeader h;
  std::memcpy(&h, image.data(), sizeof(h));
  image[static_cast<size_t>(h.section_offset[kSecPayload1])] ^= 0x01;
  Status st = OpenStatus(image, /*verify_checksum=*/true);
  EXPECT_EQ(st.code(), StatusCode::kCorruption);
  EXPECT_NE(st.message().find("checksum"), std::string::npos);
  // Without checksum verification the open is lazy; the flip surfaces as
  // a decode-time diagnostic (or an honest decode of different bits that
  // re-encoding would expose) — VerifyMappedImage catches either way.
  Result<std::unique_ptr<MappedSynopsis>> opened =
      MappedSynopsis::FromBuffer(std::move(image));
  if (opened.ok()) {
    EXPECT_FALSE(VerifyMappedImage(*opened.value()).ok());
  }
}

TEST(MappedCorruptionTest, SeededRandomFlipsNeverCrash) {
  const std::vector<uint8_t> pristine = MappedFixtureImage();
  Rng rng(2026);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<uint8_t> image = pristine;
    // 1–4 byte flips anywhere after the header (the checksummed range).
    int flips = static_cast<int>(rng.Uniform(1, 4));
    for (int f = 0; f < flips; ++f) {
      size_t pos = sizeof(MappedImageHeader) +
                   static_cast<size_t>(rng.Uniform(
                       0, static_cast<int64_t>(image.size() -
                                               sizeof(MappedImageHeader)) -
                          1));
      image[pos] ^= static_cast<uint8_t>(1 + rng.Uniform(0, 254));
    }
    // With checksum verification on, every flip in the covered range must
    // be rejected at open.
    EXPECT_EQ(OpenStatus(image, /*verify_checksum=*/true).code(),
              StatusCode::kCorruption)
        << "iter " << iter;
    // Without it, opening may succeed, but serving must never crash: every
    // rule either decodes or reports corruption.
    Result<std::unique_ptr<MappedSynopsis>> opened =
        MappedSynopsis::FromBuffer(std::move(image));
    if (!opened.ok()) continue;
    const MappedSynopsis::Layer& lossy = opened.value()->lossy_layer();
    for (int32_t r = 0; r < lossy.rule_count(); ++r) {
      (void)lossy.Rule(r);  // must not crash; errors land in error()
    }
  }
}

TEST(MappedCorruptionTest, HeaderCountMutationsAreRejected) {
  const std::vector<uint8_t> image = MappedFixtureImage();
  MappedImageHeader h;
  std::memcpy(&h, image.data(), sizeof(h));
  auto with_header = [&](auto mutate) {
    std::vector<uint8_t> mutated = image;
    MappedImageHeader hm = h;
    mutate(&hm);
    std::memcpy(mutated.data(), &hm, sizeof(hm));
    return OpenStatus(std::move(mutated));
  };
  EXPECT_EQ(with_header([](MappedImageHeader* x) { x->label_count = 0; })
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(with_header([](MappedImageHeader* x) { x->label_count = -5; })
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(
      with_header([](MappedImageHeader* x) { x->rule_count[1] = -1; }).code(),
      StatusCode::kCorruption);
  EXPECT_EQ(
      with_header([](MappedImageHeader* x) { x->rule_count[1] += 1; }).code(),
      StatusCode::kCorruption);  // directory size no longer matches
  EXPECT_EQ(
      with_header([](MappedImageHeader* x) { x->star_count[1] += 1; }).code(),
      StatusCode::kCorruption);
  EXPECT_EQ(
      with_header([](MappedImageHeader* x) { x->element_total = -1; }).code(),
      StatusCode::kCorruption);
  EXPECT_EQ(with_header([](MappedImageHeader* x) { x->file_bytes -= 1; })
                .code(),
            StatusCode::kCorruption);
  EXPECT_EQ(with_header([](MappedImageHeader* x) {
              x->maps_label_count = x->label_count + 1;
            }).code(),
            StatusCode::kCorruption);
}

}  // namespace
}  // namespace xmlsel
