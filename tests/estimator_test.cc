// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// End-to-end tests of the public facade: build → estimate → update, with
// guaranteed-bounds checks against the oracle throughout.

#include <gtest/gtest.h>

#include "baseline/exact.h"
#include "data/generator.h"
#include "estimator/estimator.h"
#include "query/parser.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace xmlsel {
namespace {

TEST(EstimatorTest, LosslessSynopsisIsExact) {
  Document doc = GenerateDataset(DatasetId::kXmark, 2000, 1);
  SynopsisOptions opts;
  opts.kappa = 0;
  SelectivityEstimator est = SelectivityEstimator::Build(doc, opts);
  ExactEvaluator oracle(doc);
  NameTable names = doc.names();
  for (const char* xpath : {"//item", "//person//age", "//item[./mailbox]",
                            "//open_auction/bidder"}) {
    Result<SelectivityEstimate> r = est.Estimate(xpath);
    ASSERT_TRUE(r.ok()) << xpath;
    EXPECT_TRUE(r.value().exact()) << xpath;
    Result<Query> q = ParseQuery(xpath, &names);
    ASSERT_TRUE(q.ok());
    EXPECT_EQ(r.value().lower, oracle.Count(q.value())) << xpath;
  }
  // Recursive structure (nested listitems): multiple embeddings per match
  // widen the upper bound, but the lower bound stays exact and the range
  // brackets the truth.
  Result<SelectivityEstimate> r = est.Estimate("//listitem//keyword");
  ASSERT_TRUE(r.ok());
  Result<Query> q = ParseQuery("//listitem//keyword", &names);
  ASSERT_TRUE(q.ok());
  int64_t exact = oracle.Count(q.value());
  EXPECT_EQ(r.value().lower, exact);
  EXPECT_GE(r.value().upper, exact);
}

TEST(EstimatorTest, LossySynopsisBrackets) {
  Document doc = GenerateDataset(DatasetId::kSwissProt, 3000, 2);
  SynopsisOptions opts;
  opts.kappa = 25;
  SelectivityEstimator est = SelectivityEstimator::Build(doc, opts);
  EXPECT_EQ(est.synopsis().deleted_productions(), 25);
  ExactEvaluator oracle(doc);
  NameTable names = doc.names();
  for (const char* xpath :
       {"//Entry", "//Ref/Author", "//Entry[./Keyword]//Author",
        "//Features/DOMAIN", "//Entry//From"}) {
    Result<SelectivityEstimate> r = est.Estimate(xpath);
    ASSERT_TRUE(r.ok()) << xpath;
    Result<Query> q = ParseQuery(xpath, &names);
    ASSERT_TRUE(q.ok());
    int64_t exact = oracle.Count(q.value());
    EXPECT_LE(r.value().lower, exact) << xpath;
    EXPECT_GE(r.value().upper, exact) << xpath;
    EXPECT_GE(r.value().width(), 0) << xpath;
  }
}

TEST(EstimatorTest, UnsatisfiableRewritesGiveExactZero) {
  auto d = ParseXml("<r><x><a/></x></r>");
  ASSERT_TRUE(d.ok());
  SelectivityEstimator est =
      SelectivityEstimator::Build(d.value(), SynopsisOptions());
  Result<SelectivityEstimate> r = est.Estimate("//x/a[./parent::y]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().lower, 0);
  EXPECT_EQ(r.value().upper, 0);
  EXPECT_TRUE(r.value().exact());
}

TEST(EstimatorTest, ReverseAxesWorkThroughTheFacade) {
  auto d = ParseXml("<r><x><a/><b/></x><y><a/></y></r>");
  ASSERT_TRUE(d.ok());
  SelectivityEstimator est =
      SelectivityEstimator::Build(d.value(), SynopsisOptions());
  Result<SelectivityEstimate> r = est.Estimate("//a[./parent::x]");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().lower, 1);
  EXPECT_EQ(r.value().upper, 1);
}

TEST(EstimatorTest, ErrorsPropagate) {
  auto d = ParseXml("<r/>");
  ASSERT_TRUE(d.ok());
  SelectivityEstimator est =
      SelectivityEstimator::Build(d.value(), SynopsisOptions());
  EXPECT_EQ(est.Estimate("//a[./b or ./c]").status().code(),
            StatusCode::kUnsupported);
  EXPECT_FALSE(est.Estimate("//a[").ok());
}

TEST(EstimatorTest, UpdatesKeepBoundsValid) {
  Rng rng(2024);
  Document doc = GenerateDataset(DatasetId::kCatalog, 800, 3);
  SynopsisOptions opts;
  opts.kappa = 10;
  opts.bplex.window_size = 1000;
  SelectivityEstimator est = SelectivityEstimator::Build(doc, opts);
  NameTable names = doc.names();

  for (int step = 0; step < 10; ++step) {
    Document current = doc.Compact();
    std::vector<NodeId> nodes = current.SubtreeNodes(current.virtual_root());
    NodeId target = nodes[static_cast<size_t>(
        rng.Uniform(1, static_cast<int64_t>(nodes.size()) - 1))];
    BinddPath path = BinddOf(current, target);
    Document tree = testing_util::RandomDocument(&rng, 5, 3, 0.4);
    UpdateOp op = rng.Chance(0.5)
                      ? UpdateOp::FirstChild(path, tree.Compact())
                      : UpdateOp::NextSibling(path, tree.Compact());
    ASSERT_TRUE(est.ApplyUpdate(op).ok());
    // Mirror on the document.
    Result<NodeId> node = ResolveBindd(doc, BinddOf(current, target));
    ASSERT_TRUE(node.ok());
    // Rebuild doc from the grammar (source of truth for this test).
    doc = est.synopsis().lossless().Expand(est.synopsis().names());
  }
  ExactEvaluator oracle(doc);
  for (const char* xpath :
       {"//item", "//author/name", "//item[./price]//last_name"}) {
    Result<SelectivityEstimate> r = est.Estimate(xpath);
    ASSERT_TRUE(r.ok()) << xpath;
    Result<Query> q = ParseQuery(xpath, &names);
    ASSERT_TRUE(q.ok());
    int64_t exact = oracle.Count(q.value());
    EXPECT_LE(r.value().lower, exact) << xpath;
    EXPECT_GE(r.value().upper, exact) << xpath;
  }
}

TEST(EstimatorTest, DeferredUpdatesRecomputeOnce) {
  Document doc = GenerateDataset(DatasetId::kCatalog, 500, 7);
  SynopsisOptions opts;
  opts.kappa = 5;
  SelectivityEstimator est = SelectivityEstimator::Build(doc, opts);
  auto tree = ParseXml("<note><text/></note>");
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(est.ApplyUpdateDeferred(
                       UpdateOp::FirstChild(BinddPath(), tree.value()))
                    .ok());
  }
  est.RecomputeLossy();
  Result<SelectivityEstimate> r = est.Estimate("//note");
  ASSERT_TRUE(r.ok());
  EXPECT_GE(r.value().upper, 5);
}

TEST(EstimatorTest, SizeBytesIsPositiveAndShrinksWithKappa) {
  Document doc = GenerateDataset(DatasetId::kPsd, 4000, 13);
  SynopsisOptions small;
  small.kappa = 0;
  SelectivityEstimator full = SelectivityEstimator::Build(doc, small);
  SynopsisOptions big;
  big.kappa = 1 << 20;
  SelectivityEstimator tiny = SelectivityEstimator::Build(doc, big);
  EXPECT_GT(full.SizeBytes(), 0);
  EXPECT_LT(tiny.SizeBytes(), full.SizeBytes());
}

/// Property sweep: facade bounds always bracket, across datasets and κ.
struct FacadeCase {
  DatasetId dataset;
  int32_t kappa;
};

class FacadeSweepTest : public ::testing::TestWithParam<FacadeCase> {};

TEST_P(FacadeSweepTest, BoundsAlwaysBracket) {
  const FacadeCase& c = GetParam();
  Document doc = GenerateDataset(c.dataset, 1500, 3);
  SynopsisOptions opts;
  opts.kappa = c.kappa;
  SelectivityEstimator est = SelectivityEstimator::Build(doc, opts);
  ExactEvaluator oracle(doc);
  Rng rng(31);
  for (int i = 0; i < 8; ++i) {
    Query q = testing_util::RandomQuery(&rng, doc, 5, false);
    Result<SelectivityEstimate> r = est.EstimateQuery(q);
    ASSERT_TRUE(r.ok());
    int64_t exact = oracle.Count(q);
    EXPECT_LE(r.value().lower, exact) << q.ToString(doc.names());
    EXPECT_GE(r.value().upper, exact) << q.ToString(doc.names());
  }
}

INSTANTIATE_TEST_SUITE_P(
    DatasetsAndKappas, FacadeSweepTest,
    ::testing::Values(FacadeCase{DatasetId::kDblp, 0},
                      FacadeCase{DatasetId::kDblp, 10},
                      FacadeCase{DatasetId::kSwissProt, 20},
                      FacadeCase{DatasetId::kXmark, 10},
                      FacadeCase{DatasetId::kXmark, 50},
                      FacadeCase{DatasetId::kPsd, 15},
                      FacadeCase{DatasetId::kCatalog, 8}));

}  // namespace
}  // namespace xmlsel
