// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Serving-layer coverage: snapshot unification of the eager and mapped
// forms, catalog publish/acquire/remove lifecycle, the lock-free reader
// fast-path audit, version attribution, the fresh-label compiled-cache
// bypass, the async batch front (affinity, stats, deterministic
// backpressure rejection), the RCU cell's retire/reclaim lifecycle, the
// thread pool's tag accounting, and the serving-catalog verifier.

#include <gtest/gtest.h>

#include <condition_variable>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "data/generator.h"
#include "estimator/synopsis.h"
#include "query/parser.h"
#include "serving/batch_front.h"
#include "serving/catalog.h"
#include "serving/snapshot.h"
#include "storage/mapped.h"
#include "verify/verify.h"
#include "xmlsel/bounded_queue.h"
#include "xmlsel/rcu.h"
#include "xmlsel/thread_pool.h"

namespace xmlsel {
namespace {

struct ServingFixture {
  std::shared_ptr<const Synopsis> synopsis;
  std::shared_ptr<const MappedSynopsis> image;
  NameTable names;  // copy of the synopsis table, for parsing
  std::vector<Query> queries;

  static ServingFixture Make(int64_t elements = 1500, int32_t kappa = 6) {
    Document doc = GenerateDataset(DatasetId::kDblp, elements, 3);
    SynopsisOptions options;
    options.kappa = kappa;
    auto synopsis =
        std::make_shared<const Synopsis>(Synopsis::Build(doc, options));
    auto image = MappedSynopsis::FromBuffer(BuildMappedImage(*synopsis));
    EXPECT_TRUE(image.ok()) << image.status().ToString();
    ServingFixture f;
    f.synopsis = synopsis;
    f.image = std::shared_ptr<const MappedSynopsis>(std::move(image).value());
    f.names = synopsis->names();
    for (std::string_view text :
         {"//article", "//article/author", "//inproceedings[./title]",
          "//article//author", "/dblp/article/title"}) {
      Result<Query> q = ParseQuery(text, &f.names);
      EXPECT_TRUE(q.ok()) << text;
      f.queries.push_back(std::move(q).value());
    }
    return f;
  }
};

TEST(ServingSnapshotTest, EagerAndMappedFormsEstimateIdentically) {
  ServingFixture f = ServingFixture::Make();
  auto eager = ServingSnapshot::FromSynopsis(f.synopsis, 1);
  auto mapped = ServingSnapshot::FromMapped(f.image, 1);
  EXPECT_FALSE(eager->is_mapped());
  EXPECT_TRUE(mapped->is_mapped());
  EXPECT_EQ(eager->element_total(), mapped->element_total());
  EXPECT_EQ(eager->base_label_count(), mapped->base_label_count());

  std::span<const Query> span(f.queries);
  auto a = EstimateBatchOnSnapshot(*eager, span);
  auto b = EstimateBatchOnSnapshot(*mapped, span);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_TRUE(a[i].ok());
    ASSERT_TRUE(b[i].ok());
    EXPECT_EQ(a[i].value().lower, b[i].value().lower);
    EXPECT_EQ(a[i].value().upper, b[i].value().upper);
  }
}

TEST(ServingSnapshotTest, StatsExposeResidencyAndCompileCounters) {
  ServingFixture f = ServingFixture::Make();
  auto mapped = ServingSnapshot::FromMapped(f.image, 7);
  SnapshotStats cold = mapped->Stats();
  EXPECT_EQ(cold.version, 7u);
  EXPECT_TRUE(cold.mapped);
  EXPECT_EQ(cold.residency.decoded_rules(), 0);
  EXPECT_EQ(cold.compile_cache_size, 0);
  EXPECT_GT(cold.residency.file_bytes, 0u);

  auto out = EstimateBatchOnSnapshot(*mapped, std::span<const Query>(f.queries));
  for (const auto& r : out) ASSERT_TRUE(r.ok());
  SnapshotStats warm = mapped->Stats();
  EXPECT_GT(warm.residency.decoded_rules(), 0);
  EXPECT_GT(warm.residency.resident_bytes(), 0);
  EXPECT_GT(warm.compile_cache_size, 0);
  // MappedSynopsis::Stats is the same public surface, layer by layer.
  MappedSynopsisStats ms = f.image->Stats();
  EXPECT_EQ(ms.decoded_rules(), warm.residency.decoded_rules());
  EXPECT_EQ(ms.lossless.decoded_rules + ms.lossy.decoded_rules,
            ms.decoded_rules());
}

TEST(ServingSnapshotTest, FreshLabelQueriesBypassTheSharedCompiledCache) {
  ServingFixture f = ServingFixture::Make();
  auto snap = ServingSnapshot::FromSynopsis(f.synopsis, 1);
  // A label the synopsis never saw: interned into the caller's scratch
  // copy, its id is >= base_label_count and caller-local.
  NameTable scratch = snap->base_names();
  Result<Query> fresh = ParseQuery("//zzz_not_in_corpus", &scratch);
  ASSERT_TRUE(fresh.ok());
  EXPECT_FALSE(QueryWithinBaseLabels(*snap, fresh.value()));
  EXPECT_TRUE(QueryWithinBaseLabels(*snap, f.queries[0]));

  const int64_t shared_before = snap->query_cache().size();
  Result<SelectivityEstimate> est = EstimateOnSnapshot(*snap, fresh.value());
  ASSERT_TRUE(est.ok());
  // Nothing matches a nonexistent label, so the guaranteed lower bound is
  // 0; the upper bound may stay positive (unknown labels fall back to
  // conservative caps — lossy stars cannot rule them out).
  EXPECT_EQ(est.value().lower, 0);
  EXPECT_LE(est.value().lower, est.value().upper);
  // The shared table must not have interned a caller-local key.
  EXPECT_EQ(snap->query_cache().size(), shared_before);
}

TEST(ServingCatalogTest, PublishAcquireRemoveLifecycle) {
  ServingFixture f = ServingFixture::Make();
  ServingCatalog catalog(4);
  EXPECT_EQ(catalog.Acquire("docs"), nullptr);

  EXPECT_EQ(catalog.PublishSynopsis("docs", f.synopsis), 1u);
  EXPECT_EQ(catalog.PublishMapped("docs", f.image), 2u);
  auto snap = catalog.Acquire("docs");
  ASSERT_NE(snap, nullptr);
  EXPECT_EQ(snap->version(), 2u);
  EXPECT_TRUE(snap->is_mapped());

  EXPECT_EQ(catalog.Tenants(), std::vector<std::string>{"docs"});
  auto stats = catalog.TenantStats("docs");
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats.value().version, 2u);

  EXPECT_TRUE(catalog.Remove("docs"));
  EXPECT_FALSE(catalog.Remove("docs"));
  EXPECT_EQ(catalog.Acquire("docs"), nullptr);
  // The pinned snapshot survives removal: estimates still work on it.
  auto post = EstimateBatchOnSnapshot(*snap, std::span<const Query>(f.queries));
  for (const auto& r : post) EXPECT_TRUE(r.ok());

  CatalogStats cs = catalog.Stats();
  EXPECT_EQ(cs.tenants, 0);
  EXPECT_EQ(cs.publishes, 2);
  EXPECT_EQ(cs.reader_fast_path_locks, 0);
}

TEST(ServingCatalogTest, BatchOutcomeAttributesTheServedVersion) {
  ServingFixture f = ServingFixture::Make();
  ServingCatalog catalog(2);
  catalog.PublishSynopsis("t", f.synopsis);
  auto first = catalog.EstimateBatch("t", std::span<const Query>(f.queries));
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().snapshot_version, 1u);

  catalog.PublishMapped("t", f.image);
  auto second = catalog.EstimateBatch("t", std::span<const Query>(f.queries));
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().snapshot_version, 2u);
  // Both forms wrap the same synopsis bytes: identical results.
  for (size_t i = 0; i < f.queries.size(); ++i) {
    EXPECT_EQ(first.value().results[i].value().lower,
              second.value().results[i].value().lower);
    EXPECT_EQ(first.value().results[i].value().upper,
              second.value().results[i].value().upper);
  }
  EXPECT_FALSE(catalog.EstimateBatch("ghost", std::span<const Query>(f.queries))
                   .ok());
}

TEST(ServingCatalogTest, ReaderFastPathTakesZeroLocksAcrossManyAcquires) {
  ServingFixture f = ServingFixture::Make();
  ServingCatalog catalog;
  catalog.PublishSynopsis("a", f.synopsis);
  catalog.PublishMapped("b", f.image);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_NE(catalog.Acquire("a"), nullptr);
    ASSERT_NE(catalog.Acquire("b"), nullptr);
    ASSERT_EQ(catalog.Acquire("missing"), nullptr);
  }
  CatalogStats cs = catalog.Stats();
  EXPECT_EQ(cs.reader_fast_path_locks, 0);
  EXPECT_EQ(cs.hits, 2000);
  EXPECT_EQ(cs.misses, 1000);
}

TEST(ServingCatalogTest, VerifierAuditsThePopulatedCatalog) {
  ServingFixture f = ServingFixture::Make();
  ServingCatalog catalog(3);
  EXPECT_TRUE(VerifyServingCatalog(catalog).ok());  // empty is fine
  catalog.PublishSynopsis("eager", f.synopsis);
  catalog.PublishMapped("mapped", f.image);
  Status audit = VerifyServingCatalog(catalog);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ServingCatalogTest, DecodeBudgetCapsResidencyAcrossTenants) {
  ServingFixture f = ServingFixture::Make();
  // Two more images of the same synopsis bytes: three tenants, three
  // independent decode caches competing for one catalog-wide budget.
  auto open = [&f]() {
    auto image = MappedSynopsis::FromBuffer(BuildMappedImage(*f.synopsis));
    EXPECT_TRUE(image.ok()) << image.status().ToString();
    return std::shared_ptr<const MappedSynopsis>(std::move(image).value());
  };
  ServingCatalog catalog(2);
  catalog.PublishMapped("a", f.image);
  catalog.PublishMapped("b", open());
  catalog.PublishMapped("c", open());

  std::span<const Query> span(f.queries);
  Result<BatchOutcome> first_a = catalog.EstimateBatch("a", span);
  ASSERT_TRUE(first_a.ok());
  for (const char* t : {"b", "c"}) {
    Result<BatchOutcome> out = catalog.EstimateBatch(t, span);
    ASSERT_TRUE(out.ok());
    for (const auto& r : out.value().results) ASSERT_TRUE(r.ok());
  }
  CatalogStats warm = catalog.Stats();
  ASSERT_GT(warm.decode_resident_bytes, 0);
  EXPECT_GT(warm.decoded_rules, 0);
  EXPECT_EQ(warm.decode_budget_bytes, 0);  // unbounded by default
  EXPECT_EQ(warm.decode_evictions, 0);

  // Budget at half the warm residency: enforcement sheds largest images
  // first until the catalog-wide total fits.
  const int64_t budget = warm.decode_resident_bytes / 2;
  catalog.SetDecodeBudget(budget);
  EXPECT_EQ(catalog.decode_budget(), budget);
  EXPECT_GT(catalog.EnforceDecodeBudget(), 0);
  CatalogStats bounded = catalog.Stats();
  EXPECT_LE(bounded.decode_resident_bytes, budget);
  EXPECT_GT(bounded.decode_evictions, 0);
  EXPECT_EQ(bounded.decode_budget_bytes, budget);

  // Evicted slots re-decode on demand with identical results...
  Result<BatchOutcome> again_a = catalog.EstimateBatch("a", span);
  ASSERT_TRUE(again_a.ok());
  for (size_t i = 0; i < f.queries.size(); ++i) {
    ASSERT_TRUE(again_a.value().results[i].ok());
    EXPECT_EQ(first_a.value().results[i].value().lower,
              again_a.value().results[i].value().lower);
    EXPECT_EQ(first_a.value().results[i].value().upper,
              again_a.value().results[i].value().upper);
  }
  // ...and the next publish re-enforces the budget automatically.
  catalog.PublishMapped("a", f.image);
  EXPECT_LE(catalog.Stats().decode_resident_bytes, budget);
  catalog.ReclaimEvictedRules();
  Status audit = VerifyServingCatalog(catalog);
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(ServingFrontTest, SubmittedBatchesCompleteWithWarmLaneAffinity) {
  ServingFixture f = ServingFixture::Make();
  ServingCatalog catalog(4);
  catalog.PublishSynopsis("docs", f.synopsis);
  ThreadPool pool(2);
  ServingFront front(&catalog, &pool);
  EXPECT_EQ(front.lane_count(), catalog.shard_count());
  EXPECT_EQ(front.LaneIndex("docs"), catalog.ShardIndex("docs"));

  std::vector<std::string> xpaths = {"//article", "//article/author"};
  std::vector<BatchFuture> futures;
  for (int i = 0; i < 16; ++i) {
    auto fut = front.Submit("docs", xpaths);
    ASSERT_TRUE(fut.ok());
    futures.push_back(fut.value());
  }
  auto reference = catalog.EstimateStrings(
      "docs", std::vector<std::string_view>{"//article", "//article/author"});
  ASSERT_TRUE(reference.ok());
  for (const BatchFuture& fut : futures) {
    auto outcome = fut.Wait();
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome.value().snapshot_version, 1u);
    ASSERT_EQ(outcome.value().results.size(), 2u);
    for (size_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(outcome.value().results[i].ok());
      EXPECT_EQ(outcome.value().results[i].value().lower,
                reference.value().results[i].value().lower);
      EXPECT_EQ(outcome.value().results[i].value().upper,
                reference.value().results[i].value().upper);
    }
  }
  front.Drain();
  FrontStats fs = front.Stats();
  EXPECT_EQ(fs.submitted, 16);
  EXPECT_EQ(fs.completed, 16);
  EXPECT_EQ(fs.rejected, 0);
  EXPECT_EQ(fs.queue_depth, 0);
  // All 16 batches rode one lane; its tag shows up in the pool's books.
  bool found_lane_tag = false;
  for (const auto& [tag, stats] : pool.TagStats()) {
    if (tag.rfind("lane-", 0) == 0 && stats.tasks > 0) found_lane_tag = true;
  }
  EXPECT_TRUE(found_lane_tag);
  EXPECT_EQ(pool.QueueDepth(), 0);
}

TEST(ServingFrontTest, UnknownTenantSurfacesAsNotFoundPerBatch) {
  ServingFixture f = ServingFixture::Make();
  ServingCatalog catalog(2);
  catalog.PublishSynopsis("real", f.synopsis);
  ThreadPool pool(1);
  ServingFront front(&catalog, &pool);
  auto fut = front.Submit("ghost", {"//article"});
  ASSERT_TRUE(fut.ok());
  auto outcome = fut.value().Wait();
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.status().code(), StatusCode::kNotFound);
}

TEST(ServingFrontTest, RejectPolicySurfacesResourceExhaustedDeterministically) {
  ServingFixture f = ServingFixture::Make();
  ServingCatalog catalog(1);
  catalog.PublishSynopsis("docs", f.synopsis);
  ThreadPool pool(1);
  // Wedge the pool's only worker so no drain task can run, making the
  // queue state deterministic.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;
  pool.Submit([&] {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });

  FrontOptions options;
  options.queue_capacity = 1;
  options.block_on_full = false;
  ServingFront rejecting(&catalog, &pool, options);
  auto first = rejecting.Submit("docs", {"//article"});
  ASSERT_TRUE(first.ok());
  auto second = rejecting.Submit("docs", {"//article"});
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejecting.Stats().rejected, 1);

  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  auto outcome = first.value().Wait();
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().results[0].ok());
}

TEST(RcuCellTest, PublishRetireReclaimLifecycle) {
  RcuCell<int> cell;
  EXPECT_FALSE(cell.Read());
  cell.Publish(std::make_shared<const int>(1));
  {
    RcuCell<int>::Ref ref = cell.Read();
    ASSERT_TRUE(ref);
    EXPECT_EQ(*ref, 1);
    std::shared_ptr<const int> pinned = ref.Pin();
    // Swap while a reader is inside its critical section: the superseded
    // version must survive at least until the guard ends.
    cell.Publish(std::make_shared<const int>(2));
    EXPECT_EQ(*ref, 1);  // the guard's view is immutable
    EXPECT_GE(cell.retired_pending(), 1);
    EXPECT_EQ(*pinned, 1);
  }
  // Reader gone: the writer's next housekeeping pass reclaims.
  cell.Reclaim();
  EXPECT_EQ(cell.retired_pending(), 0);
  EXPECT_EQ(*cell.Read(), 2);
  EXPECT_EQ(cell.published(), 2);

  // A pin outlives both the swap and the cell's own retired list.
  std::shared_ptr<const int> survivor = cell.Read().Pin();
  cell.Publish(std::make_shared<const int>(3));
  cell.Publish(nullptr);
  cell.Reclaim();
  EXPECT_EQ(*survivor, 2);
  EXPECT_FALSE(cell.Read());
}

TEST(BoundedQueueTest, TryPushRejectsWhenFullAndPopMakesRoom) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));
  EXPECT_EQ(q.size(), 2u);
  int out = 0;
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 1);
  EXPECT_TRUE(q.TryPush(3));
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_TRUE(q.TryPop(&out));
  EXPECT_EQ(out, 3);
  EXPECT_FALSE(q.TryPop(&out));
  EXPECT_TRUE(q.Empty());
}

TEST(ThreadPoolTest, TagStatsAttributeTasksAndQueueDepthDrains) {
  ThreadPool pool(2);
  for (int i = 0; i < 5; ++i) pool.Submit([] {}, "alpha");
  for (int i = 0; i < 3; ++i) pool.Submit([] {}, "beta");
  pool.Submit([] {});  // untagged: no accounting
  pool.Wait();
  EXPECT_EQ(pool.QueueDepth(), 0);
  int64_t alpha = 0, beta = 0;
  for (const auto& [tag, stats] : pool.TagStats()) {
    if (tag == "alpha") alpha = stats.tasks;
    if (tag == "beta") beta = stats.tasks;
    EXPECT_GE(stats.seconds, 0.0);
  }
  EXPECT_EQ(alpha, 5);
  EXPECT_EQ(beta, 3);
}

}  // namespace
}  // namespace xmlsel
