// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Tests for the mmap-able synopsis image (storage/mapped.h) and its
// estimator front end. The central property: serving out of the packed
// image — rules decoded lazily on first touch — is *bit-identical* to the
// eager path, down to the kernel's own counters, across datasets, κ
// values, query shapes, and cold/warm decode caches. Plus the laziness
// claims themselves: the lossless layer stays cold, and decoded rules
// stay below the image's total.

#include <gtest/gtest.h>

#include <memory>
#include <string_view>
#include <vector>

#include "automaton/compiled_cache.h"
#include "automaton/grammar_eval.h"
#include "data/generator.h"
#include "estimator/estimator.h"
#include "estimator/mapped_estimator.h"
#include "estimator/serving.h"
#include "estimator/synopsis.h"
#include "storage/mapped.h"
#include "verify/verify.h"
#include "workload/query_gen.h"

namespace xmlsel {
namespace {

Synopsis BuildSynopsis(DatasetId id, int64_t elements, int32_t kappa) {
  Document doc = GenerateDataset(id, elements, 17);
  SynopsisOptions options;
  options.kappa = kappa;
  return Synopsis::Build(doc, options);
}

std::shared_ptr<const MappedSynopsis> OpenImage(const Synopsis& s) {
  MappedOpenOptions options;
  options.verify_checksum = true;
  Result<std::unique_ptr<MappedSynopsis>> image =
      MappedSynopsis::FromBuffer(BuildMappedImage(s), options);
  EXPECT_TRUE(image.ok()) << image.status().ToString();
  return std::shared_ptr<const MappedSynopsis>(std::move(image).value());
}

std::vector<Query> Workload(const Synopsis& s, int32_t count) {
  Document doc = s.lossless().Expand(s.names());
  WorkloadOptions wopts;
  wopts.count = count;
  wopts.min_nodes = 2;
  wopts.max_nodes = 4;
  wopts.wildcard_prob = 0.15;
  wopts.seed = 23;
  return GenerateWorkload(doc, wopts);
}

// --- The bit-identity property -------------------------------------------

TEST(MappedPropertyTest, EagerAndMappedEstimatesAreIdentical) {
  const DatasetId kDatasets[] = {DatasetId::kXmark, DatasetId::kDblp,
                                 DatasetId::kCatalog};
  for (DatasetId id : kDatasets) {
    for (int32_t kappa : {0, 4, 16}) {
      Synopsis synopsis = BuildSynopsis(id, 900, kappa);
      SelectivityEstimator eager(synopsis);
      MappedEstimator mapped(OpenImage(synopsis));
      std::vector<Query> queries = Workload(synopsis, 16);
      // Two passes: pass 0 runs against a cold decode cache, pass 1
      // against a warm one — results must not depend on cache state.
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          Result<SelectivityEstimate> a = eager.EstimateQuery(queries[qi]);
          Result<SelectivityEstimate> b = mapped.EstimateQuery(queries[qi]);
          ASSERT_EQ(a.ok(), b.ok())
              << "dataset " << static_cast<int>(id) << " kappa " << kappa
              << " query " << qi << " pass " << pass;
          if (!a.ok()) continue;
          EXPECT_EQ(a.value().lower, b.value().lower)
              << "dataset " << static_cast<int>(id) << " kappa " << kappa
              << " query " << qi << " pass " << pass;
          EXPECT_EQ(a.value().upper, b.value().upper)
              << "dataset " << static_cast<int>(id) << " kappa " << kappa
              << " query " << qi << " pass " << pass;
        }
      }
      // The serving layer never touched the lossless rules.
      EXPECT_EQ(mapped.image().lossless_layer().cache_stats().decoded_rules,
                0);
    }
  }
}

TEST(MappedPropertyTest, KernelCounterTracesAreIdentical) {
  Synopsis synopsis = BuildSynopsis(DatasetId::kXmark, 1200, 8);
  std::shared_ptr<const MappedSynopsis> image = OpenImage(synopsis);
  // A second image of the same synopsis serves the packed-direct
  // evaluator, so its decode-cache counters stay untouched by the lazy
  // provider above and the direct path's "never decodes into the cache"
  // claim can be asserted exactly.
  std::shared_ptr<const MappedSynopsis> direct_image = OpenImage(synopsis);
  std::vector<Query> queries = Workload(synopsis, 12);
  const SynopsisEvalCache& cache = synopsis.eval_cache();
  CompiledQueryCache compile_cache;
  for (size_t qi = 0; qi < queries.size(); ++qi) {
    Result<std::shared_ptr<const PreparedQuery>> prepared =
        compile_cache.Prepare(queries[qi]);
    if (!prepared.ok() || prepared.value()->unsatisfiable) continue;
    for (BoundMode mode : {BoundMode::kLower, BoundMode::kUpper}) {
      const CompiledQuery& cq = mode == BoundMode::kLower
                                    ? prepared.value()->lower
                                    : UpperQueryOf(*prepared.value());
      GrammarEvaluator eager(&cache, &cq, &synopsis.label_maps(), mode);
      GrammarEvaluator lazy(&image->serving_provider(), &cq,
                            &image->label_maps(), mode);
      DirectRuleProvider direct_rules(&direct_image->lossy_layer());
      GrammarEvaluator direct(&direct_rules, &cq,
                              &direct_image->label_maps(), mode);
      // Cold mapped cache on the first query, warm later — the trace must
      // be independent of that.
      GrammarEvalResult a = eager.Evaluate();
      GrammarEvalResult b = lazy.Evaluate();
      GrammarEvalResult c = direct.Evaluate();
      ASSERT_TRUE(a.status.ok());
      ASSERT_TRUE(b.status.ok()) << b.status.ToString();
      ASSERT_TRUE(c.status.ok()) << c.status.ToString();
      auto check = [&](const GrammarEvalResult& x, const char* path) {
        EXPECT_EQ(a.accepted, x.accepted) << path << " query " << qi;
        EXPECT_EQ(a.count, x.count) << path << " query " << qi;
        EXPECT_EQ(a.sigma_entries, x.sigma_entries) << path << " query " << qi;
        EXPECT_EQ(a.distinct_states, x.distinct_states)
            << path << " query " << qi;
        EXPECT_EQ(a.memo_probes, x.memo_probes) << path << " query " << qi;
        EXPECT_EQ(a.memo_hits, x.memo_hits) << path << " query " << qi;
        EXPECT_EQ(a.intern_probes, x.intern_probes) << path << " query " << qi;
        EXPECT_EQ(a.intern_hits, x.intern_hits) << path << " query " << qi;
        EXPECT_EQ(a.pool_pairs, x.pool_pairs) << path << " query " << qi;
        EXPECT_EQ(a.arena_bytes, x.arena_bytes) << path << " query " << qi;
      };
      check(b, "lazy");
      check(c, "direct");
    }
  }
  // The entire direct workload ran without a single shared-cache decode.
  MappedCacheStats direct_lossy = direct_image->lossy_layer().cache_stats();
  EXPECT_EQ(direct_lossy.decoded_rules, 0);
  EXPECT_EQ(direct_lossy.resident_bytes, 0);
  EXPECT_GT(direct_lossy.direct_decodes, 0);
}

TEST(MappedPropertyTest, DirectPathMatchesEagerAndDecoded) {
  const DatasetId kDatasets[] = {DatasetId::kXmark, DatasetId::kDblp,
                                 DatasetId::kCatalog};
  for (DatasetId id : kDatasets) {
    for (int32_t kappa : {0, 4, 16}) {
      Synopsis synopsis = BuildSynopsis(id, 900, kappa);
      SelectivityEstimator eager(synopsis);
      MappedEstimator decoded(OpenImage(synopsis));
      MappedEstimator direct(OpenImage(synopsis));
      direct.set_direct(true);
      std::vector<Query> queries = Workload(synopsis, 16);
      for (int pass = 0; pass < 2; ++pass) {
        for (size_t qi = 0; qi < queries.size(); ++qi) {
          Result<SelectivityEstimate> a = eager.EstimateQuery(queries[qi]);
          Result<SelectivityEstimate> b = decoded.EstimateQuery(queries[qi]);
          Result<SelectivityEstimate> c = direct.EstimateQuery(queries[qi]);
          ASSERT_EQ(a.ok(), b.ok());
          ASSERT_EQ(a.ok(), c.ok())
              << "dataset " << static_cast<int>(id) << " kappa " << kappa
              << " query " << qi << " pass " << pass;
          if (!a.ok()) continue;
          EXPECT_EQ(a.value().lower, c.value().lower)
              << "dataset " << static_cast<int>(id) << " kappa " << kappa
              << " query " << qi << " pass " << pass;
          EXPECT_EQ(a.value().upper, c.value().upper)
              << "dataset " << static_cast<int>(id) << " kappa " << kappa
              << " query " << qi << " pass " << pass;
          EXPECT_EQ(b.value().lower, c.value().lower);
          EXPECT_EQ(b.value().upper, c.value().upper);
        }
      }
      // The direct estimator's image never materialized a cache entry —
      // the packed-direct headline: cold start to first query with
      // decoded_rules == 0.
      EXPECT_EQ(direct.image().Stats().decoded_rules(), 0);
      EXPECT_GT(direct.image().lossy_layer().cache_stats().direct_decodes, 0);
      // The shared-cache estimator did decode (same queries, same image
      // format) — the two modes differ only in where decodes land.
      EXPECT_GT(decoded.image().Stats().decoded_rules(), 0);
    }
  }
}

TEST(MappedPropertyTest, BatchMatchesSequentialAndThreadCounts) {
  Synopsis synopsis = BuildSynopsis(DatasetId::kDblp, 1000, 6);
  MappedEstimator mapped(OpenImage(synopsis));
  SelectivityEstimator eager(synopsis);
  std::vector<std::string_view> xpaths = {
      "//article//author", "/dblp/article", "//author", "//*",
      "//article[.//author]//title", "//nosuchlabel", "not a query ((",
  };
  std::vector<Result<SelectivityEstimate>> seq =
      mapped.EstimateBatch(std::span<const std::string_view>(xpaths), 1);
  std::vector<Result<SelectivityEstimate>> par =
      mapped.EstimateBatch(std::span<const std::string_view>(xpaths), 4);
  std::vector<Result<SelectivityEstimate>> ref =
      eager.EstimateBatch(std::span<const std::string_view>(xpaths), 1);
  ASSERT_EQ(seq.size(), xpaths.size());
  ASSERT_EQ(par.size(), xpaths.size());
  for (size_t i = 0; i < xpaths.size(); ++i) {
    ASSERT_EQ(seq[i].ok(), par[i].ok()) << xpaths[i];
    ASSERT_EQ(seq[i].ok(), ref[i].ok()) << xpaths[i];
    if (!seq[i].ok()) {
      EXPECT_EQ(seq[i].status().code(), par[i].status().code());
      continue;
    }
    EXPECT_EQ(seq[i].value().lower, par[i].value().lower) << xpaths[i];
    EXPECT_EQ(seq[i].value().upper, par[i].value().upper) << xpaths[i];
    EXPECT_EQ(seq[i].value().lower, ref[i].value().lower) << xpaths[i];
    EXPECT_EQ(seq[i].value().upper, ref[i].value().upper) << xpaths[i];
  }
}

// --- Laziness ------------------------------------------------------------

TEST(MappedTest, LosslessLayerStaysColdAndDecodesStayLazy) {
  Synopsis synopsis = BuildSynopsis(DatasetId::kXmark, 1500, 12);
  MappedEstimator mapped(OpenImage(synopsis));
  ASSERT_TRUE(mapped.Estimate("//listitem//keyword").ok());
  MappedCacheStats lossy = mapped.cache_stats();
  MappedCacheStats lossless = mapped.image().lossless_layer().cache_stats();
  EXPECT_EQ(lossless.decoded_rules, 0);
  EXPECT_EQ(lossless.misses, 0);
  EXPECT_GT(lossy.decoded_rules, 0);
  // Laziness across the whole image: the large lossless layer never
  // decodes, so total decoded rules stay strictly below the image total.
  int64_t decoded = lossy.decoded_rules + lossless.decoded_rules;
  int64_t total = lossy.total_rules + lossless.total_rules;
  EXPECT_LT(decoded, total);
  EXPECT_GT(lossy.resident_bytes, 0);
  // A repeat query is served from the cache: decode count is unchanged.
  ASSERT_TRUE(mapped.Estimate("//listitem//keyword").ok());
  EXPECT_EQ(mapped.cache_stats().decoded_rules, lossy.decoded_rules);
  EXPECT_GT(mapped.cache_stats().hits, lossy.hits);
}

TEST(MappedTest, UnsatisfiableQueriesDecodeNothing) {
  Synopsis synopsis = BuildSynopsis(DatasetId::kCatalog, 800, 5);
  MappedEstimator mapped(OpenImage(synopsis));
  // The parent of a document element is the virtual root, which only the
  // wildcard test matches — the rewrite proves this shape empty, so no
  // bound evaluation (and hence no rule decode) ever runs.
  Result<SelectivityEstimate> r = mapped.Estimate("/catalog/parent::item");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r.value().lower, 0);
  EXPECT_EQ(r.value().upper, 0);
  EXPECT_EQ(mapped.cache_stats().decoded_rules, 0);
}

// --- Residency accounting & eviction -------------------------------------

TEST(MappedTest, ResidentBytesAccountingIsExact) {
  Synopsis synopsis = BuildSynopsis(DatasetId::kDblp, 1000, 6);
  MappedEstimator mapped(OpenImage(synopsis));
  ASSERT_TRUE(mapped.Estimate("//article//author").ok());
  MappedCacheStats lossy = mapped.cache_stats();
  EXPECT_GT(lossy.decoded_rules, 0);
  EXPECT_GT(lossy.resident_bytes, 0);
  // The audit recounts every decoded slot's exact footprint —
  // sizeof(MappedDecodedRule) + the flat form's capacity-based HeapBytes —
  // and cross-checks both counters. Any drift (a slot whose vectors grew
  // after install, a missed charge) fails here.
  Status audit = mapped.image().lossy_layer().AuditDecodeCache();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
  audit = mapped.image().lossless_layer().AuditDecodeCache();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

TEST(MappedTest, FirstQueryDecodesOnlyReachableRules) {
  Synopsis synopsis = BuildSynopsis(DatasetId::kXmark, 1500, 12);
  MappedEstimator mapped(OpenImage(synopsis));
  const MappedSynopsis::Layer& lossy = mapped.image().lossy_layer();
  const int32_t reachable = lossy.ReachableRuleCount();
  ASSERT_GT(reachable, 0);
  ASSERT_LE(reachable, lossy.rule_count());
  // The first satisfiable query walks the whole call graph below the
  // start rule — and nothing else. Rules the directory stores but the
  // start rule cannot reach must never decode, however wholesale the
  // first query is.
  ASSERT_TRUE(mapped.Estimate("//*").ok());
  EXPECT_EQ(mapped.cache_stats().decoded_rules, reachable);
  // Further queries stay within the reachable set by construction.
  ASSERT_TRUE(mapped.Estimate("//listitem//keyword").ok());
  EXPECT_EQ(mapped.cache_stats().decoded_rules, reachable);
}

TEST(MappedTest, BudgetEvictionRedecodesBitIdentically) {
  Synopsis synopsis = BuildSynopsis(DatasetId::kXmark, 1200, 8);
  std::shared_ptr<const MappedSynopsis> image = OpenImage(synopsis);
  MappedEstimator mapped(image);
  std::vector<Query> queries = Workload(synopsis, 12);
  std::span<const Query> span(queries);
  std::vector<Result<SelectivityEstimate>> warm_run =
      mapped.EstimateBatch(span, 1);
  MappedSynopsisStats warm = image->Stats();
  ASSERT_GT(warm.resident_bytes(), 0);

  // Partial eviction: enforce half the warm residency. CLOCK needs one
  // revolution to strip the just-used ref bits and a second to evict, so
  // a single call suffices from quiescence.
  const int64_t half = warm.resident_bytes() / 2;
  int64_t evicted = image->EnforceDecodeBudget(half);
  EXPECT_GT(evicted, 0);
  EXPECT_LE(image->Stats().resident_bytes(), half);
  EXPECT_EQ(image->lossy_layer().cache_stats().evictions, evicted);
  Status audit = image->lossy_layer().AuditDecodeCache();
  EXPECT_TRUE(audit.ok()) << audit.ToString();

  // Full eviction drains the cache entirely; with no readers announced
  // the grace period has already passed, so reclamation leaves nothing
  // pending.
  image->EnforceDecodeBudget(0);
  EXPECT_EQ(image->Stats().decoded_rules(), 0);
  EXPECT_EQ(image->Stats().resident_bytes(), 0);
  image->ReclaimEvictedRules();

  // Re-decoding evicted slots reproduces the exact same estimates.
  std::vector<Result<SelectivityEstimate>> again =
      mapped.EstimateBatch(span, 1);
  ASSERT_EQ(again.size(), warm_run.size());
  for (size_t i = 0; i < warm_run.size(); ++i) {
    ASSERT_EQ(warm_run[i].ok(), again[i].ok()) << "query " << i;
    if (!warm_run[i].ok()) continue;
    EXPECT_EQ(warm_run[i].value().lower, again[i].value().lower)
        << "query " << i;
    EXPECT_EQ(warm_run[i].value().upper, again[i].value().upper)
        << "query " << i;
  }
  audit = image->lossy_layer().AuditDecodeCache();
  EXPECT_TRUE(audit.ok()) << audit.ToString();
}

// --- Round trips ---------------------------------------------------------

TEST(MappedTest, FileRoundTripThroughPackAndOpen) {
  Synopsis synopsis = BuildSynopsis(DatasetId::kSwissProt, 700, 7);
  std::string path = ::testing::TempDir() + "mapped_roundtrip.synopsis";
  ASSERT_TRUE(PackSynopsisToFile(synopsis, path).ok());
  MappedOpenOptions options;
  options.verify_checksum = true;
  Result<MappedEstimator> mapped = MappedEstimator::Open(path, options);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  ASSERT_TRUE(VerifyMappedImage(mapped.value().image()).ok());
  Result<Synopsis> thawed = mapped.value().image().Thaw();
  ASSERT_TRUE(thawed.ok()) << thawed.status().ToString();
  EXPECT_TRUE(CompareGrammars(thawed.value().lossy(), synopsis.lossy()).ok());
  EXPECT_TRUE(
      CompareGrammars(thawed.value().lossless(), synopsis.lossless()).ok());
  std::remove(path.c_str());
}

TEST(MappedTest, RoundTripVerifierPassesAcrossKappas) {
  for (int32_t kappa : {0, 1, 9, 1 << 20}) {
    Synopsis synopsis = BuildSynopsis(DatasetId::kPsd, 600, kappa);
    Status st = VerifyMappedRoundTrip(synopsis);
    EXPECT_TRUE(st.ok()) << "kappa " << kappa << ": " << st.ToString();
  }
}

}  // namespace
}  // namespace xmlsel
