// Seeded violation: writes a XMLSEL_GUARDED_BY field without holding the
// guarding mutex. static_analysis_test asserts that a ThreadSafety
// compile of this file FAILS.
#include "xmlsel/mutex.h"

namespace {

class Counter {
 public:
  void Bump() { ++n_; }  // BAD: no MutexLock on mu_

 private:
  xmlsel::Mutex mu_;
  int n_ XMLSEL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.Bump();
}
