// Seeded violation for xmlsel_lint rule `unguarded-cast`:
// reinterpret_cast on a storage path with no allow(cast) justification
// arguing its bounds.
#include <cstdint>

namespace fixture {

struct Header {
  uint32_t magic;
};

const Header* View(const uint8_t* bytes) {
  return reinterpret_cast<const Header*>(bytes);  // BAD: no justification
}

}  // namespace fixture
