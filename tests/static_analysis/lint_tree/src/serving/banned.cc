// Seeded violation for xmlsel_lint rule `banned-function`: strtol on a
// serving path (use std::from_chars with explicit validation instead).
#include <cstdlib>

namespace fixture {

long ParseEnv(const char* s) {
  return std::strtol(s, nullptr, 10);  // BAD: banned on serving paths
}

}  // namespace fixture
