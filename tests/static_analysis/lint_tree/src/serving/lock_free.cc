// Seeded violation for xmlsel_lint rule `lock-free-read`: a function
// marked XMLSEL_LOCK_FREE_READ takes a lock.
namespace fixture {

struct Catalog {
  XMLSEL_LOCK_FREE_READ int Acquire() const {
    MutexLock lock(mu_);  // BAD: lock on a declared lock-free reader path
    return generation_;
  }
};

}  // namespace fixture
