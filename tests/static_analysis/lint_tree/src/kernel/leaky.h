// Seeded violations for xmlsel_lint rules `using-namespace` and
// `iostream-header`: both leak into every includer.
#ifndef XMLSEL_KERNEL_LEAKY_H_
#define XMLSEL_KERNEL_LEAKY_H_

#include <iostream>  // BAD: iostream in a src/ header

using namespace std;  // BAD: using-directive in a header

namespace fixture {
inline void Hello() { cout << "hello\n"; }
}  // namespace fixture

#endif  // XMLSEL_KERNEL_LEAKY_H_
