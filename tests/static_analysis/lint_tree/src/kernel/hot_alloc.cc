// Seeded violation for xmlsel_lint rule `hot-alloc`: heap-allocating
// call inside an XMLSEL_HOT body with no allow() justification.
#include <vector>

namespace fixture {

XMLSEL_HOT void Accumulate(std::vector<int>& out, int v) {
  out.push_back(v);  // BAD: allocation token in a hot body
}

}  // namespace fixture
