// Seeded violation for xmlsel_lint rule `discarded-status`: a
// bare-statement call to a function this tree declares as returning
// Status.
namespace fixture {

Status Flush();

void Tick() {
  Flush();  // BAD: Status discarded as a bare statement
}

}  // namespace fixture
