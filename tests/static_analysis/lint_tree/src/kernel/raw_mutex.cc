// Seeded violation for xmlsel_lint rule `raw-mutex`: uses std::mutex
// directly instead of the annotated xmlsel wrappers.
#include <mutex>

namespace fixture {

struct Registry {
  std::mutex mu;  // BAD: raw primitive outside src/xmlsel/mutex.h
  int entries = 0;
};

}  // namespace fixture
