// Seeded violation for xmlsel_lint rule `include-guard`: the guard does
// not match the canonical XMLSEL_<PATH>_H_ spelling for this path
// (expected XMLSEL_KERNEL_BAD_GUARD_H_).
#ifndef FIXTURE_WRONG_GUARD_H
#define FIXTURE_WRONG_GUARD_H

namespace fixture {
inline int One() { return 1; }
}  // namespace fixture

#endif  // FIXTURE_WRONG_GUARD_H
