// Positive control for the xmlsel_lint leg: obeys every rule, including
// a justified hot-path allocation. Linting exactly this file must exit 0;
// if it does not, the harness invocation is broken and the seeded
// violations above would pass vacuously.
#include <vector>

namespace fixture {

XMLSEL_HOT void Accumulate(std::vector<int>& out, int v) {
  // xmlsel-lint: allow(hot-alloc): grows to peak size once, then amortized
  out.push_back(v);
}

void Cold(std::vector<int>& out) { out.push_back(0); }

}  // namespace fixture
