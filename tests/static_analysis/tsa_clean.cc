// Positive control for the ThreadSafety negative-compile harness: uses
// the capability wrappers correctly, so a -Wthread-safety -Werror
// compile must SUCCEED. If this file fails, the harness flags are wrong
// (bad include path, typo'd warning flag, …) and every "expected
// failure" above it would be vacuous.
#include "xmlsel/mutex.h"
#include "xmlsel/rcu.h"

namespace {

class Counter {
 public:
  void Bump() XMLSEL_EXCLUDES(mu_) {
    xmlsel::MutexLock lock(mu_);
    ++n_;
  }

  int Get() XMLSEL_EXCLUDES(mu_) {
    xmlsel::MutexLock lock(mu_);
    return n_;
  }

 private:
  xmlsel::Mutex mu_;
  int n_ XMLSEL_GUARDED_BY(mu_) = 0;
};

int ReadSharedState() XMLSEL_REQUIRES_SHARED(xmlsel::rcu_read_section);
int ReadSharedState() { return 42; }

int Good() {
  xmlsel::RcuDomain::ReadGuard guard;
  return ReadSharedState();
}

}  // namespace

int main() {
  Counter c;
  c.Bump();
  return c.Get() == 1 && Good() == 42 ? 0 : 1;
}
