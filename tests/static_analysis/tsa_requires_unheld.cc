// Seeded violation: calls a XMLSEL_REQUIRES(mu_) method without holding
// mu_. static_analysis_test asserts that a ThreadSafety compile of this
// file FAILS.
#include "xmlsel/mutex.h"

namespace {

class Queue {
 public:
  void Tick() { DrainLocked(); }  // BAD: DrainLocked requires mu_

 private:
  void DrainLocked() XMLSEL_REQUIRES(mu_) { pending_ = 0; }

  xmlsel::Mutex mu_;
  int pending_ XMLSEL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Queue q;
  q.Tick();
}
