// Seeded violation: takes a Mutex with a bare Lock() and returns without
// Unlock(), so the capability is still held at end of function.
// static_analysis_test asserts that a ThreadSafety compile of this file
// FAILS.
#include "xmlsel/mutex.h"

namespace {

class Leaky {
 public:
  void Leak() {
    mu_.Lock();
    n_ = 1;
    // BAD: no mu_.Unlock() on this path
  }

 private:
  xmlsel::Mutex mu_;
  int n_ XMLSEL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Leaky l;
  l.Leak();
}
