// Seeded violation: drops a Status return on the floor. Status and
// Result<T> are class-level [[nodiscard]] (src/xmlsel/status.h), so the
// host compiler must reject this under -Werror=unused-result — on GCC
// and Clang alike. static_analysis_test asserts the compile FAILS.
#include "xmlsel/status.h"

namespace {

xmlsel::Status Persist();

void Tick() {
  Persist();  // BAD: Status discarded
}

}  // namespace

int main() {
  Tick();
}
