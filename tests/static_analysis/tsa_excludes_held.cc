// Seeded violation: calls a XMLSEL_EXCLUDES(mu_) method while already
// holding mu_ — the self-deadlock shape the annotation exists to ban.
// static_analysis_test asserts that a ThreadSafety compile of this file
// FAILS.
#include "xmlsel/mutex.h"

namespace {

class Cache {
 public:
  void Refresh() XMLSEL_EXCLUDES(mu_) {
    xmlsel::MutexLock lock(mu_);
    entries_ = 0;
  }

  void Outer() XMLSEL_EXCLUDES(mu_) {
    xmlsel::MutexLock lock(mu_);
    Refresh();  // BAD: Refresh excludes mu_, which is held here
  }

 private:
  xmlsel::Mutex mu_;
  int entries_ XMLSEL_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Cache c;
  c.Outer();
}
