// Seeded violation: calls a function annotated
// XMLSEL_REQUIRES_SHARED(rcu_read_section) without an RcuDomain::ReadGuard
// pinning the epoch — the use-after-reclaim shape the RCU capability
// exists to ban. static_analysis_test asserts that a ThreadSafety compile
// of this file FAILS.
#include "xmlsel/rcu.h"

namespace {

int ReadSharedState() XMLSEL_REQUIRES_SHARED(xmlsel::rcu_read_section);
int ReadSharedState() { return 42; }

int Bad() {
  return ReadSharedState();  // BAD: no ReadGuard in scope
}

}  // namespace

int main() { return Bad() == 42 ? 0 : 1; }
