// Positive control for the [[nodiscard]] leg: consumes the Status, so a
// -Werror=unused-result compile must SUCCEED. Guards the harness against
// vacuous passes from broken flags or include paths.
#include "xmlsel/status.h"

namespace {

xmlsel::Status Persist();

bool Tick() {
  xmlsel::Status s = Persist();
  return s.ok();
}

}  // namespace

int main() {
  return Tick() ? 0 : 1;
}
