// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Incremental update tests (§6): applying an update to the grammar must
// produce exactly the grammar of the updated document — verified by
// expansion — including the paper's worked delete/insert examples, long
// random update sequences, and size behaviour.

#include <gtest/gtest.h>

#include "data/generator.h"
#include "estimator/update.h"
#include "grammar/bplex.h"
#include "tests/test_util.h"
#include "xml/parser.h"
#include "xml/writer.h"

namespace xmlsel {
namespace {

Document SingleTree(const char* xml) {
  auto r = ParseXml(xml);
  XMLSEL_CHECK(r.ok());
  return std::move(r).value();
}

/// Applies the same op to a plain document (the reference semantics).
void ApplyToDocument(Document* doc, const UpdateOp& op) {
  Result<NodeId> node = ResolveBindd(*doc, op.path);
  ASSERT_TRUE(node.ok());
  switch (op.kind) {
    case UpdateOp::Kind::kDelete:
      doc->DeleteSubtree(node.value());
      break;
    case UpdateOp::Kind::kFirstChild:
    case UpdateOp::Kind::kNextSibling: {
      // Copy the tree under the target position.
      NodeId src = op.tree.document_element();
      LabelId root_label =
          doc->names().Intern(op.tree.names().Name(op.tree.label(src)));
      NodeId dst = op.kind == UpdateOp::Kind::kFirstChild
                       ? doc->InsertFirstChild(node.value(), root_label)
                       : doc->InsertNextSibling(node.value(), root_label);
      // Attach children depth-first.
      std::vector<std::pair<NodeId, NodeId>> stack = {{src, dst}};
      while (!stack.empty()) {
        auto [s, d] = stack.back();
        stack.pop_back();
        std::vector<NodeId> kids;
        for (NodeId c = op.tree.first_child(s); c != kNullNode;
             c = op.tree.next_sibling(c)) {
          kids.push_back(c);
        }
        for (NodeId c : kids) {
          NodeId nd = doc->AppendChild(
              d, doc->names().Intern(op.tree.names().Name(op.tree.label(c))));
          stack.push_back({c, nd});
        }
      }
      break;
    }
  }
}

TEST(UpdateTest, PaperDeleteExample) {
  // §6: delete 1.2.1 on c(d(e(u)), c(d(f), c(d(a), a))) removes the
  // second d together with its subtree.
  Document doc = SingleTree(
      "<c><d><e><u/></e></d><c><d><f/></d><c><d><a/></d><a/></c></c></c>");
  SltGrammar g = BplexCompress(doc);
  UpdateOp op = UpdateOp::Delete(BinddPath::Parse("1.2.1").value());
  NameTable names = doc.names();
  ASSERT_TRUE(ApplyUpdateToGrammar(&g, &names, op, BplexOptions()).ok());
  g.Validate();
  Document expected = doc;  // copy, then apply to the document directly
  ApplyToDocument(&expected, op);
  EXPECT_TRUE(g.Expand(names).StructurallyEquals(expected.Compact()));
}

TEST(UpdateTest, PaperFirstChildInsertExample) {
  // §6: first_child 1.2.1 e(u) — inserting e(u) as first child of the
  // second d node.
  Document doc = SingleTree(
      "<c><d><e><u/></e></d><c><d><f/></d><c><d><a/></d><a/></c></c></c>");
  SltGrammar g = BplexCompress(doc);
  UpdateOp op = UpdateOp::FirstChild(BinddPath::Parse("1.2.1").value(),
                                     SingleTree("<e><u/></e>"));
  NameTable names = doc.names();
  ASSERT_TRUE(ApplyUpdateToGrammar(&g, &names, op, BplexOptions()).ok());
  Document expected = doc;
  ApplyToDocument(&expected, op);
  EXPECT_TRUE(g.Expand(names).StructurallyEquals(expected.Compact()));
}

TEST(UpdateTest, NextSiblingInsert) {
  Document doc = SingleTree("<r><a/><b/></r>");
  SltGrammar g = BplexCompress(doc);
  UpdateOp op = UpdateOp::NextSibling(BinddPath::Parse("1").value(),
                                      SingleTree("<x><y/></x>"));
  NameTable names = doc.names();
  ASSERT_TRUE(ApplyUpdateToGrammar(&g, &names, op, BplexOptions()).ok());
  Document expected = doc;
  ApplyToDocument(&expected, op);
  EXPECT_TRUE(g.Expand(names).StructurallyEquals(expected.Compact()));
}

TEST(UpdateTest, ErrorsAreReported) {
  Document doc = SingleTree("<r><a/></r>");
  SltGrammar g = BplexCompress(doc);
  NameTable names = doc.names();
  // Path walks off the tree.
  UpdateOp bad = UpdateOp::Delete(BinddPath::Parse("1.1.1").value());
  EXPECT_EQ(ApplyUpdateToGrammar(&g, &names, bad, BplexOptions()).code(),
            StatusCode::kNotFound);
  // Deleting the document element.
  UpdateOp root_del = UpdateOp::Delete(BinddPath());
  EXPECT_EQ(
      ApplyUpdateToGrammar(&g, &names, root_del, BplexOptions()).code(),
      StatusCode::kInvalidArgument);
  // Empty insertion tree.
  UpdateOp empty_insert =
      UpdateOp::FirstChild(BinddPath::Parse("1").value(), Document());
  EXPECT_EQ(
      ApplyUpdateToGrammar(&g, &names, empty_insert, BplexOptions()).code(),
      StatusCode::kInvalidArgument);
}

/// Property: random update sequences keep grammar and document in sync.
class UpdateSequenceTest : public ::testing::TestWithParam<int> {};

TEST_P(UpdateSequenceTest, GrammarTracksDocument) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 31337);
  Document doc = testing_util::RandomDocument(&rng, 60, 3, 0.5);
  SltGrammar g = BplexCompress(doc);
  NameTable names = doc.names();
  BplexOptions opts;
  opts.window_size = 1000;  // §8's update window
  for (int step = 0; step < 25; ++step) {
    Document current = doc.Compact();
    // Pick a random live node for the bindd path.
    std::vector<NodeId> nodes = current.SubtreeNodes(current.virtual_root());
    NodeId target = nodes[static_cast<size_t>(
        rng.Uniform(1, static_cast<int64_t>(nodes.size()) - 1))];
    BinddPath path = BinddOf(current, target);
    UpdateOp op = UpdateOp::Delete(path);
    int64_t kind = rng.Uniform(0, 2);
    if (kind == 0 && target != current.document_element()) {
      op = UpdateOp::Delete(path);
    } else {
      Document tree = testing_util::RandomDocument(&rng, 6, 3, 0.5);
      op = kind == 1 ? UpdateOp::FirstChild(path, std::move(tree))
                     : UpdateOp::NextSibling(path, std::move(tree));
    }
    Status st = ApplyUpdateToGrammar(&g, &names, op, opts);
    ASSERT_TRUE(st.ok()) << st.ToString();
    g.Validate();
    ApplyToDocument(&doc, op);
    ASSERT_TRUE(g.Expand(names).StructurallyEquals(doc.Compact()))
        << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UpdateSequenceTest, ::testing::Range(1, 9));

TEST(UpdateTest, SizeStaysBoundedUnderUpdates) {
  // §8.2's qualitative claim: incremental updates do not blow up the
  // grammar relative to recompression from scratch.
  Rng rng(4242);
  Document doc = GenerateDataset(DatasetId::kCatalog, 2000, 99);
  SltGrammar g = BplexCompress(doc);
  NameTable names = doc.names();
  BplexOptions opts;
  opts.window_size = 1000;
  for (int step = 0; step < 60; ++step) {
    Document current = doc.Compact();
    std::vector<NodeId> nodes = current.SubtreeNodes(current.virtual_root());
    NodeId target = nodes[static_cast<size_t>(
        rng.Uniform(1, static_cast<int64_t>(nodes.size()) - 1))];
    BinddPath path = BinddOf(current, target);
    Document tree = testing_util::RandomDocument(&rng, 5, 3, 0.5);
    UpdateOp op = rng.Chance(0.5)
                      ? UpdateOp::FirstChild(path, std::move(tree))
                      : UpdateOp::NextSibling(path, std::move(tree));
    ASSERT_TRUE(ApplyUpdateToGrammar(&g, &names, op, opts).ok());
    ApplyToDocument(&doc, op);
  }
  SltGrammar fresh = BplexCompress(doc.Compact());
  // Incrementally maintained grammar within 3x of a fresh compression
  // (the paper observes ~1.4x on its catalog experiment).
  EXPECT_LE(g.NodeCount(), 3 * fresh.NodeCount() + 64);
}

}  // namespace
}  // namespace xmlsel
