// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Tests for SLT grammars: representation, DAG sharing, BPLEX compression
// (expansion must reproduce the document exactly), analysis statistics,
// and the paper's §4 worked examples.

#include <gtest/gtest.h>

#include "data/generator.h"
#include "grammar/analysis.h"
#include "grammar/bplex.h"
#include "grammar/dag.h"
#include "grammar/slt.h"
#include "tests/test_util.h"
#include "xml/parser.h"

namespace xmlsel {
namespace {

/// The §4.1 example tree c(d(e(u)), c(d(f), c(d(a), a))) as a document.
Document Section41Example() {
  auto r = ParseXml(
      "<c><d><e><u/></e></d><c><d><f/></d><c><d><a/></d><a/></c></c></c>");
  XMLSEL_CHECK(r.ok());
  return std::move(r).value();
}

TEST(SltGrammarTest, HandBuiltGrammarExpands) {
  // A_0(y1,y2) -> c(d(y1, y2), ⊥); A_1 -> A_0(e(u,⊥), A_0(f, A_0(a, a)))
  // — the paper's example grammar (our indices shift by one because ⊥ is
  // a null child, not a rule).
  Document example = Section41Example();
  SltGrammar g;
  {
    GrammarRule r;
    r.rank = 2;
    RhsBuilder b(&r);
    int32_t y1 = b.Param(0);
    int32_t y2 = b.Param(1);
    int32_t d = b.Terminal(example.names().Lookup("d"), y1, y2);
    int32_t c = b.Terminal(example.names().Lookup("c"), d, kNullNode);
    b.SetRoot(c);
    g.AddRule(std::move(r));
  }
  {
    GrammarRule r;
    r.rank = 0;
    RhsBuilder b(&r);
    LabelId la = example.names().Lookup("a");
    int32_t a1 = b.Terminal(la, kNullNode, kNullNode);
    int32_t a2 = b.Terminal(la, kNullNode, kNullNode);
    int32_t inner = b.Nonterminal(0, {a1, a2});
    int32_t f = b.Terminal(example.names().Lookup("f"), kNullNode, kNullNode);
    int32_t mid = b.Nonterminal(0, {f, inner});
    int32_t u = b.Terminal(example.names().Lookup("u"), kNullNode, kNullNode);
    int32_t e = b.Terminal(example.names().Lookup("e"), u, kNullNode);
    int32_t outer = b.Nonterminal(0, {e, mid});
    b.SetRoot(outer);
    g.AddRule(std::move(r));
  }
  g.Validate();
  EXPECT_FALSE(g.IsLossy());
  Document expanded = g.Expand(example.names());
  EXPECT_TRUE(expanded.StructurallyEquals(example));
}

TEST(SltGrammarTest, EdgeAndNodeCounts) {
  SltGrammar g;
  GrammarRule r;
  r.rank = 0;
  RhsBuilder b(&r);
  int32_t leaf = b.Terminal(1, kNullNode, kNullNode);
  b.SetRoot(b.Terminal(1, leaf, kNullNode));
  g.AddRule(std::move(r));
  EXPECT_EQ(g.NodeCount(), 2);
  EXPECT_EQ(g.EdgeCount(), 1);  // ⊥ children are not edges
}

TEST(DagTest, SharesRepeatedSubtrees) {
  Document doc = Section41Example();
  SltGrammar g = BuildDagGrammar(doc);
  // The repeated leaf 'a' must have become a rule.
  EXPECT_GE(g.rule_count(), 2);
  Document expanded = g.Expand(doc.names());
  EXPECT_TRUE(expanded.StructurallyEquals(doc));
}

TEST(DagTest, DagOfRepetitiveDocumentIsSmall) {
  // NOTE: the DAG shares *binary* subtrees, which include sibling tails —
  // so a flat list of identical items shares only its inner subtrees; the
  // cross-sibling repetition is the pattern phase's job (BPLEX).
  Document doc;
  NodeId root = doc.AppendChild(doc.virtual_root(), "r");
  for (int i = 0; i < 200; ++i) {
    NodeId item = doc.AppendChild(root, "item");
    doc.AppendChild(item, "x");
    doc.AppendChild(item, "y");
  }
  SltGrammar dag = BuildDagGrammar(doc);
  EXPECT_LT(dag.NodeCount(), doc.element_count());
  EXPECT_TRUE(dag.Expand(doc.names()).StructurallyEquals(doc));
  SltGrammar g = BplexCompress(doc);
  EXPECT_LT(g.NodeCount(), 100);  // pattern sharing closes the gap
  EXPECT_TRUE(g.Expand(doc.names()).StructurallyEquals(doc));
}

TEST(BplexTest, RoundTripsOnPaperExample) {
  Document doc = Section41Example();
  SltGrammar g = BplexCompress(doc);
  g.Validate();
  EXPECT_TRUE(g.Expand(doc.names()).StructurallyEquals(doc));
}

TEST(BplexTest, CompressesRepetitiveStructure) {
  Document doc;
  NodeId root = doc.AppendChild(doc.virtual_root(), "r");
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    NodeId item = doc.AppendChild(root, "item");
    doc.AppendChild(item, "a");
    doc.AppendChild(item, "b");
    if (rng.Chance(0.5)) doc.AppendChild(item, "c");
  }
  SltGrammar g = BplexCompress(doc);
  EXPECT_TRUE(g.Expand(doc.names()).StructurallyEquals(doc));
  // Compression ratio: the paper reports ~5% of document edges for real
  // XML; this synthetic case is even more repetitive.
  EXPECT_LT(g.EdgeCount(), doc.element_count() / 4);
}

TEST(BplexTest, RespectsMaxRank) {
  Document doc;
  NodeId root = doc.AppendChild(doc.virtual_root(), "r");
  for (int i = 0; i < 50; ++i) {
    NodeId a = doc.AppendChild(root, "a");
    NodeId b = doc.AppendChild(a, "b");
    doc.AppendChild(b, "c");
  }
  BplexOptions opts;
  opts.max_rank = 2;
  SltGrammar g = BplexCompress(doc, opts);
  for (int32_t i = 0; i < g.rule_count(); ++i) {
    EXPECT_LE(g.rule(i).rank, 2);
  }
  EXPECT_TRUE(g.Expand(doc.names()).StructurallyEquals(doc));
}

class BplexRoundTripTest : public ::testing::TestWithParam<int> {};

TEST_P(BplexRoundTripTest, RandomDocumentsRoundTrip) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  for (int iter = 0; iter < 10; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, 120, 4, 0.5);
    SltGrammar g = BplexCompress(doc);
    g.Validate();
    EXPECT_TRUE(g.Expand(doc.names()).StructurallyEquals(doc))
        << "seed=" << GetParam() << " iter=" << iter;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BplexRoundTripTest,
                         ::testing::Range(1, 9));

TEST(BplexTest, RoundTripsOnDatasets) {
  for (DatasetId id : {DatasetId::kDblp, DatasetId::kXmark,
                       DatasetId::kCatalog}) {
    Document doc = GenerateDataset(id, 2000, 11);
    SltGrammar g = BplexCompress(doc);
    EXPECT_TRUE(g.Expand(doc.names()).StructurallyEquals(doc))
        << DatasetName(id);
    // Real-ish XML must compress well (§4: ~5% of edges).
    EXPECT_LT(g.EdgeCount(), doc.element_count() / 2) << DatasetName(id);
  }
}

TEST(AnalysisTest, MultiplicitySizeHeightOnPaperExample) {
  Document doc = Section41Example();
  SltGrammar g = BuildDagGrammar(doc);
  GrammarAnalysis a = AnalyzeGrammar(g);
  // Start rule is generated exactly once.
  EXPECT_EQ(a.multiplicity[static_cast<size_t>(g.start_rule())], 1);
  // The start rule generates the whole 8-node document.
  EXPECT_EQ(a.gen_size[static_cast<size_t>(g.start_rule())],
            doc.element_count());
  EXPECT_EQ(a.gen_height[static_cast<size_t>(g.start_rule())],
            doc.SubtreeHeight(doc.document_element()));
  // The shared 'a' leaf has multiplicity 2 (the paper's example).
  bool found_mult2_leaf = false;
  for (int32_t i = 0; i < g.start_rule(); ++i) {
    if (a.gen_size[static_cast<size_t>(i)] == 1 &&
        a.multiplicity[static_cast<size_t>(i)] == 2) {
      found_mult2_leaf = true;
    }
  }
  EXPECT_TRUE(found_mult2_leaf);
}

TEST(AnalysisTest, SizeMatchesDocumentOnRandomInputs) {
  Rng rng(5);
  for (int iter = 0; iter < 8; ++iter) {
    Document doc = testing_util::RandomDocument(&rng, 150, 3, 0.6);
    SltGrammar g = BplexCompress(doc);
    GrammarAnalysis a = AnalyzeGrammar(g);
    EXPECT_EQ(a.gen_size[static_cast<size_t>(g.start_rule())],
              doc.element_count());
    EXPECT_EQ(a.gen_height[static_cast<size_t>(g.start_rule())],
              doc.SubtreeHeight(doc.document_element()));
  }
}

TEST(NormalizedCopyTest, DropsUnreachableRules) {
  SltGrammar g;
  {
    GrammarRule dead;  // never referenced
    dead.rank = 0;
    RhsBuilder b(&dead);
    b.SetRoot(b.Terminal(1, kNullNode, kNullNode));
    g.AddRule(std::move(dead));
  }
  {
    GrammarRule start;
    start.rank = 0;
    RhsBuilder b(&start);
    b.SetRoot(b.Terminal(2, kNullNode, kNullNode));
    g.AddRule(std::move(start));
  }
  SltGrammar n = NormalizedCopy(g);
  EXPECT_EQ(n.rule_count(), 1);
}

}  // namespace
}  // namespace xmlsel
