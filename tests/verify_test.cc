// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Mutation tests for the cross-layer invariant verifier (src/verify).
// Each test seeds one corruption class into an otherwise-valid artifact
// and asserts that the matching checker (a) rejects it and (b) pinpoints
// the damage in its diagnostic. A final suite runs the full pipeline
// verifier over real datasets and κ values to pin zero false positives.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "automaton/grammar_eval.h"
#include "automaton/state.h"
#include "automaton/transition.h"
#include "data/generator.h"
#include "estimator/synopsis.h"
#include "grammar/bplex.h"
#include "grammar/dag.h"
#include "grammar/lossy.h"
#include "grammar/slt.h"
#include "query/parser.h"
#include "storage/packed.h"
#include "verify/verify.h"
#include "xml/parser.h"

namespace xmlsel {
namespace {

Document SingleTree(const char* xml) {
  auto r = ParseXml(xml);
  XMLSEL_CHECK(r.ok());
  return std::move(r).value();
}

/// Asserts `st` is an error whose message contains `needle`.
void ExpectDiagnostic(const Status& st, const std::string& needle) {
  ASSERT_FALSE(st.ok()) << "corruption went undetected";
  EXPECT_NE(st.ToString().find(needle), std::string::npos)
      << "diagnostic does not pinpoint the damage: " << st.ToString();
}

/// A0(y1) → 1(y1, ⊥);  A1 → A0(2(⊥, ⊥)).  Small, valid, exercises
/// parameters, references, and terminals.
SltGrammar TwoRuleGrammar() {
  SltGrammar g;
  GrammarRule r0;
  r0.rank = 1;
  RhsBuilder b0(&r0);
  b0.SetRoot(b0.Terminal(1, b0.Param(0), kNullNode));
  g.AddRule(std::move(r0));
  GrammarRule r1;
  RhsBuilder b1(&r1);
  b1.SetRoot(b1.Nonterminal(0, {b1.Terminal(2, kNullNode, kNullNode)}));
  g.AddRule(std::move(r1));
  return g;
}

// --- SLT well-formedness (grammar layer) ---------------------------------

TEST(VerifyGrammarTest, AcceptsValidGrammar) {
  SltGrammar g = TwoRuleGrammar();
  EXPECT_TRUE(VerifyGrammar(g).ok());
  EXPECT_TRUE(VerifyAllRulesReachable(g).ok());
}

TEST(VerifyGrammarTest, DetectsForwardRuleReference) {
  SltGrammar g = TwoRuleGrammar();
  // A1's call now references A1 itself: j < i violated (cycle seed).
  for (GrammarNode& n : g.mutable_rule(1).nodes) {
    if (n.kind == GrammarNode::Kind::kNonterminal) n.sym = 1;
  }
  ExpectDiagnostic(VerifyGrammar(g), "strictly earlier rules");
}

TEST(VerifyGrammarTest, DetectsCallArityMismatch) {
  SltGrammar g = TwoRuleGrammar();
  for (GrammarNode& n : g.mutable_rule(1).nodes) {
    if (n.kind == GrammarNode::Kind::kNonterminal) n.children.clear();
  }
  ExpectDiagnostic(VerifyGrammar(g), "rank is");
}

TEST(VerifyGrammarTest, DetectsParamOrderViolation) {
  // A0(y1, y2) → 1(y2, y1): both parameters used once but out of order.
  SltGrammar g;
  GrammarRule r0;
  r0.rank = 2;
  RhsBuilder b0(&r0);
  b0.SetRoot(b0.Terminal(1, b0.Param(1), b0.Param(0)));
  g.AddRule(std::move(r0));
  GrammarRule r1;
  RhsBuilder b1(&r1);
  b1.SetRoot(b1.Nonterminal(
      0, {b1.Terminal(2, kNullNode, kNullNode),
          b1.Terminal(3, kNullNode, kNullNode)}));
  g.AddRule(std::move(r1));
  ExpectDiagnostic(VerifyGrammar(g), "parameters must appear in order");
}

TEST(VerifyGrammarTest, DetectsMissingParam) {
  SltGrammar g = TwoRuleGrammar();
  // Drop A0's parameter use: rank 1 but zero parameters in the RHS.
  for (GrammarNode& n : g.mutable_rule(0).nodes) {
    if (n.kind == GrammarNode::Kind::kTerminal) n.children[0] = kNullNode;
  }
  ExpectDiagnostic(VerifyGrammar(g), "parameters, rank is");
}

TEST(VerifyGrammarTest, DetectsTerminalArity) {
  SltGrammar g = TwoRuleGrammar();
  g.mutable_rule(0).nodes[1].children.resize(1);  // node 1 is the terminal
  ExpectDiagnostic(VerifyGrammar(g), "want 2 (binary encoding)");
}

TEST(VerifyGrammarTest, DetectsRhsCycle) {
  SltGrammar g = TwoRuleGrammar();
  // The terminal's ⊥ child now points back at the rule root.
  GrammarRule& r = g.mutable_rule(0);
  r.nodes[static_cast<size_t>(r.root)].children[1] = r.root;
  ExpectDiagnostic(VerifyGrammar(g), "reached twice");
}

TEST(VerifyGrammarTest, DetectsReservedTerminalLabel) {
  SltGrammar g = TwoRuleGrammar();
  g.mutable_rule(1).nodes[0].sym = 0;  // label 0 is the virtual root
  ExpectDiagnostic(VerifyGrammar(g), "reserved or negative");
}

TEST(VerifyGrammarTest, DetectsUnrealizableStarStats) {
  SltGrammar g = TwoRuleGrammar();
  g.InternStarStats(StarStats{5, 3});  // size < height: no such pattern
  ExpectDiagnostic(VerifyGrammar(g), "not realizable");
}

TEST(VerifyGrammarTest, DetectsStartRuleWithParams) {
  SltGrammar g;
  GrammarRule r0;
  r0.rank = 1;
  RhsBuilder b0(&r0);
  b0.SetRoot(b0.Terminal(1, b0.Param(0), kNullNode));
  g.AddRule(std::move(r0));
  ExpectDiagnostic(VerifyGrammar(g), "start rule");
}

TEST(VerifyGrammarTest, DetectsUnreachableRule) {
  SltGrammar g;
  GrammarRule r0;
  RhsBuilder b0(&r0);
  b0.SetRoot(b0.Terminal(1, kNullNode, kNullNode));
  g.AddRule(std::move(r0));  // never referenced
  GrammarRule r1;
  RhsBuilder b1(&r1);
  b1.SetRoot(b1.Terminal(2, kNullNode, kNullNode));
  g.AddRule(std::move(r1));
  EXPECT_TRUE(VerifyGrammar(g).ok());  // well-formed, just not normalized
  ExpectDiagnostic(VerifyAllRulesReachable(g), "rule A0");
}

// --- Expansion witness (DAG/BPLEX postcondition) -------------------------

TEST(VerifyExpansionTest, DetectsLabelSwap) {
  Document doc = SingleTree("<a><b><c/></b><b><c/></b><d/></a>");
  SltGrammar g = BuildDagGrammar(doc);
  ASSERT_TRUE(VerifyExpansion(g, doc).ok());
  // Swap one terminal's label for another valid one: same shape and
  // size, different tree — only the hash witness can see it.
  for (int32_t i = 0; i < g.rule_count(); ++i) {
    for (GrammarNode& n : g.mutable_rule(i).nodes) {
      if (n.kind == GrammarNode::Kind::kTerminal) {
        n.sym = n.sym == 1 ? 2 : 1;
        ExpectDiagnostic(VerifyExpansion(g, doc), "shape or labels");
        return;
      }
    }
  }
  FAIL() << "no terminal found to corrupt";
}

TEST(VerifyExpansionTest, DetectsDroppedSubtree) {
  Document doc = SingleTree("<a><b><c/></b><b><c/></b><d/></a>");
  SltGrammar g = BplexCompress(doc);
  ASSERT_TRUE(VerifyExpansion(g, doc).ok());
  for (int32_t i = 0; i < g.rule_count(); ++i) {
    for (GrammarNode& n : g.mutable_rule(i).nodes) {
      if (n.kind == GrammarNode::Kind::kTerminal &&
          n.children[0] != kNullNode) {
        n.children[0] = kNullNode;  // prune the left (child) subtree
        ExpectDiagnostic(VerifyExpansion(g, doc), "nodes");
        return;
      }
    }
  }
  FAIL() << "no terminal with a live child found to corrupt";
}

// --- κ-lossy soundness ---------------------------------------------------

TEST(VerifyLossyTest, DetectsStaleLossyLayer) {
  Document doc = GenerateDataset(DatasetId::kXmark, 600, 11);
  SltGrammar lossless = BplexCompress(doc);
  LossyGrammar lg = MakeLossy(lossless, 3);
  ASSERT_TRUE(VerifyLossy(lg.grammar, lossless, 3).ok());
  // Any drift between the stored lossy layer and MakeLossy(lossless, κ)
  // must be flagged — here a single relabeled terminal.
  for (int32_t i = 0; i < lg.grammar.rule_count(); ++i) {
    for (GrammarNode& n : lg.grammar.mutable_rule(i).nodes) {
      if (n.kind == GrammarNode::Kind::kTerminal) {
        n.sym = n.sym == 1 ? 2 : 1;
        ExpectDiagnostic(VerifyLossy(lg.grammar, lossless, 3),
                         "disagrees with MakeLossy");
        return;
      }
    }
  }
  FAIL() << "no terminal found to corrupt";
}

// --- Label maps ----------------------------------------------------------

TEST(VerifyLabelMapsTest, DetectsAsymmetry) {
  Document doc = SingleTree("<a><b/><c/></a>");
  LabelMaps maps = ComputeLabelMaps(doc);
  ASSERT_TRUE(VerifyLabelMaps(maps).ok());
  bool corrupted = false;
  for (int32_t p = 0; p < maps.label_count && !corrupted; ++p) {
    for (int32_t c = 0; c < maps.label_count && !corrupted; ++c) {
      if (maps.child[static_cast<size_t>(p)][static_cast<size_t>(c)]) {
        maps.child[static_cast<size_t>(p)][static_cast<size_t>(c)] = false;
        corrupted = true;  // parent[c][p] still claims the edge
      }
    }
  }
  ASSERT_TRUE(corrupted);
  ExpectDiagnostic(VerifyLabelMaps(maps), "disagree at");
}

TEST(VerifyLabelMapsTest, DetectsMissingRealEdge) {
  Document doc = SingleTree("<a><b/><c/></a>");
  LabelMaps maps = ComputeLabelMaps(doc);
  // Remove one real edge from BOTH maps: still symmetric, but now the
  // upper-bound automaton would prune true matches.
  bool corrupted = false;
  for (int32_t p = 0; p < maps.label_count && !corrupted; ++p) {
    for (int32_t c = 0; c < maps.label_count && !corrupted; ++c) {
      if (maps.child[static_cast<size_t>(p)][static_cast<size_t>(c)]) {
        maps.child[static_cast<size_t>(p)][static_cast<size_t>(c)] = false;
        maps.parent[static_cast<size_t>(c)][static_cast<size_t>(p)] = false;
        corrupted = true;
      }
    }
  }
  ASSERT_TRUE(corrupted);
  EXPECT_TRUE(VerifyLabelMaps(maps).ok());
  ExpectDiagnostic(VerifyLabelMapsCoverDocument(maps, doc, /*exact=*/false),
                   "miss real edge");
}

// --- Document / binary tree ----------------------------------------------

TEST(VerifyDocumentTest, DetectsBrokenParentBacklink) {
  Document doc = SingleTree("<a><b/><c/></a>");
  ASSERT_TRUE(VerifyDocument(doc).ok());
  NodeId b = doc.first_child(doc.document_element());
  doc.TestOnlyMutableNode(b)->parent = b;
  ExpectDiagnostic(VerifyDocument(doc), "parent link");
}

TEST(VerifyDocumentTest, DetectsLabelOutOfRange) {
  Document doc = SingleTree("<a><b/><c/></a>");
  NodeId b = doc.first_child(doc.document_element());
  doc.TestOnlyMutableNode(b)->label = 99;
  ExpectDiagnostic(VerifyDocument(doc), "outside the name table");
}

TEST(VerifyDocumentTest, DetectsSiblingCycle) {
  Document doc = SingleTree("<a><b/><c/></a>");
  // Close the sibling chain into a loop b → c → b with both backlinks
  // consistent, so only the traversal itself can notice.
  NodeId b = doc.first_child(doc.document_element());
  NodeId c = doc.next_sibling(b);
  doc.TestOnlyMutableNode(c)->next_sibling = b;
  doc.TestOnlyMutableNode(b)->prev_sibling = c;
  Status st = VerifyDocument(doc);
  ASSERT_FALSE(st.ok()) << "sibling cycle went undetected";
  // Any closed chain necessarily breaks a backlink somewhere, so the
  // verifier may pinpoint either the cycle itself or the torn backlink.
  std::string text = st.ToString();
  EXPECT_TRUE(text.find("cycle") != std::string::npos ||
              text.find("reached twice") != std::string::npos ||
              text.find("prev_sibling") != std::string::npos)
      << text;
}

// --- Automaton kernel (state registry + σ-memo) --------------------------

struct KernelFixture {
  Document doc;
  Synopsis synopsis;
  NameTable names;
  Result<Query> query;
  Result<CompiledQuery> cq;

  KernelFixture()
      : doc(GenerateDataset(DatasetId::kXmark, 800, 5)),
        synopsis(Synopsis::Build(doc, {})),
        names(synopsis.names()),
        query(ParseQuery("//item[./mailbox]//keyword", &names)),
        cq(CompiledQuery::Compile(query.value())) {}
};

TEST(VerifyKernelTest, DetectsRegistryPoolCorruption) {
  KernelFixture f;
  ASSERT_TRUE(f.cq.ok());
  GrammarEvaluator eval(&f.synopsis.lossy(), &f.cq.value(),
                        &f.synopsis.label_maps(), BoundMode::kLower, nullptr);
  eval.Evaluate();
  ASSERT_TRUE(VerifyStateRegistry(eval.registry(), &f.cq.value()).ok());
  ASSERT_GT(eval.registry().pool_pairs(), 0);
  // Overwrite one pool word with a pair naming an impossible query node:
  // the span-local scan must name the damaged state.
  eval.TestOnlyMutableRegistry()->TestOnlyCorruptPool(
      0, static_cast<QPair>(0x7fff0000u));
  ExpectDiagnostic(VerifyStateRegistry(eval.registry(), &f.cq.value()),
                   "out of range");
}

TEST(VerifyKernelTest, DetectsDenseWordCorruption) {
  KernelFixture f;
  ASSERT_TRUE(f.cq.ok());
  GrammarEvaluator eval(&f.synopsis.lossy(), &f.cq.value(),
                        &f.synopsis.label_maps(), BoundMode::kLower, nullptr);
  eval.Evaluate();
  ASSERT_TRUE(eval.registry().dense());
  ASSERT_TRUE(VerifyStateRegistry(eval.registry(), &f.cq.value()).ok());
  ASSERT_GT(eval.registry().size(), 1);
  // Flip bits in one state's dense image: its words no longer re-derive
  // from the sorted span, and the audit must say exactly that.
  eval.TestOnlyMutableRegistry()->TestOnlyCorruptWords(1, 0, ~uint64_t{0});
  ExpectDiagnostic(VerifyStateRegistry(eval.registry(), &f.cq.value()),
                   "do not re-derive");
}

TEST(VerifyKernelTest, DetectsSigmaMemoKeyCorruption) {
  KernelFixture f;
  ASSERT_TRUE(f.cq.ok());
  GrammarEvaluator eval(&f.synopsis.lossy(), &f.cq.value(),
                        &f.synopsis.label_maps(), BoundMode::kLower, nullptr);
  eval.Evaluate();
  ASSERT_TRUE(VerifySigmaMemo(eval.memo(), f.synopsis.lossy(),
                              eval.registry(), &f.cq.value())
                  .ok());
  ASSERT_GT(eval.memo().size(), 0);
  // Point entry 0's rule word at a rule the grammar does not have.
  eval.TestOnlyMutableMemo()->TestOnlyCorruptKey(
      0, 0, f.synopsis.lossy().rule_count() + 7);
  ExpectDiagnostic(VerifySigmaMemo(eval.memo(), f.synopsis.lossy(),
                                   eval.registry(), &f.cq.value()),
                   "keys rule");
}

// --- Packed storage ------------------------------------------------------

TEST(VerifyStorageTest, RoundTripHoldsOnRealGrammars) {
  Document doc = GenerateDataset(DatasetId::kDblp, 500, 3);
  Synopsis s = Synopsis::Build(doc, {});
  EXPECT_TRUE(VerifyPackedRoundTrip(s.lossless(), s.names().size()).ok());
  EXPECT_TRUE(VerifyPackedRoundTrip(s.lossy(), s.names().size()).ok());
}

TEST(VerifyStorageTest, CorruptedBytesNeverDecodeToADifferentGrammar) {
  Document doc = SingleTree("<a><b><c/></b><b><c/></b></a>");
  SltGrammar g = BplexCompress(doc);
  std::vector<uint8_t> bytes = EncodePacked(g, doc.names().size());
  // Flip every byte in turn: each decode must either fail cleanly or
  // reproduce a well-formed grammar — never crash, never yield a grammar
  // that fails verification.
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> dam = bytes;
    dam[i] ^= 0x24;
    Result<SltGrammar> dec = DecodePacked(dam);
    if (dec.ok()) {
      EXPECT_TRUE(VerifyGrammar(dec.value()).ok())
          << "byte " << i << ": decoder accepted an ill-formed grammar";
    }
  }
}

// --- Zero false positives over real pipelines ----------------------------

TEST(VerifyPipelineTest, NoFalsePositivesAcrossDatasetsAndKappas) {
  const DatasetId kDatasets[] = {DatasetId::kXmark, DatasetId::kDblp,
                                 DatasetId::kCatalog};
  for (DatasetId id : kDatasets) {
    Document doc = GenerateDataset(id, 700, 17);
    for (int32_t kappa : {0, 2, 8}) {
      SynopsisOptions options;
      options.kappa = kappa;
      VerifyReport report = VerifyPipeline(doc, options);
      EXPECT_TRUE(report.ok())
          << "dataset " << static_cast<int>(id) << " kappa " << kappa
          << ":\n"
          << report.ToString();
      EXPECT_EQ(report.entries.size(), 9u);
    }
  }
}

TEST(VerifyPipelineTest, ReportListsEveryLayer) {
  Document doc = SingleTree("<a><b/><c/></a>");
  VerifyReport report = VerifyPipeline(doc, {});
  std::string text = report.ToString();
  for (const char* layer :
       {"xml/document", "xml/roundtrip", "grammar/dag", "grammar/bplex",
        "grammar/streaming", "synopsis", "automaton/kernel",
        "storage/packed", "storage/mapped"}) {
    EXPECT_NE(text.find(layer), std::string::npos) << layer;
  }
  EXPECT_TRUE(report.ok()) << text;
}

}  // namespace
}  // namespace xmlsel
