#!/usr/bin/env bash
# Static and dynamic checks, strictest first:
#  1. Lint — xmlsel_lint (project invariants: hot-path allocations,
#     lock-free-read markers, raw mutexes, banned functions, discarded
#     Status, header hygiene) plus clang-tidy over src/ (tools/lint.sh;
#     the clang-tidy layer skips when not installed).
#  2. Warnings wall — the whole tree at -Wall -Wextra -Wshadow
#     -Wconversion -Werror (Warnings build type, -O1 to dodge libstdc++
#     false positives at -O3).
#  3. Thread safety — Clang Thread Safety Analysis over the annotated
#     Mutex/CondVar/RCU capability wrappers (ThreadSafety build type,
#     -Wthread-safety -Wthread-safety-beta -Werror). Clang-only; skipped
#     with a notice when clang++ is absent (the annotations are inert
#     under GCC, so a GCC pass would prove nothing).
#  4. ThreadSanitizer — races in the concurrent batch engine (most
#     importantly concurrency_test, which races evaluators over the
#     shared synopsis and eval cache).
#  5. AddressSanitizer + UBSan — memory errors in the allocation-heavy
#     evaluation kernel (bump arena, pooled state registry, SSO linear
#     forms) across the full test suite.
# Sanitizer builds lack -DNDEBUG, so the src/verify invariant hooks
# (XMLSEL_VERIFY_LEVEL=1) are live during both test runs.
# Any warning, lint finding, thread-safety diagnostic, data race, or
# memory error fails this script.
#
# Usage: tools/check.sh [tsan-build-dir] [asan-build-dir] [warn-build-dir]
#        (defaults: build-tsan build-asan build-warn; the ThreadSafety
#        build uses build-threadsafety)
set -euo pipefail

cd "$(dirname "$0")/.."
TSAN_DIR="${1:-build-tsan}"
ASAN_DIR="${2:-build-asan}"
WARN_DIR="${3:-build-warn}"
TSA_DIR="${TSA_DIR:-build-threadsafety}"

tools/lint.sh

cmake -B "$WARN_DIR" -S . -DCMAKE_BUILD_TYPE=Warnings
cmake --build "$WARN_DIR" -j "$(nproc)"
echo "Warnings wall passed."

if command -v clang++ > /dev/null 2>&1; then
  cmake -B "$TSA_DIR" -S . -DCMAKE_BUILD_TYPE=ThreadSafety \
      -DCMAKE_CXX_COMPILER=clang++
  cmake --build "$TSA_DIR" -j "$(nproc)"
  echo "Thread-safety analysis passed."
else
  echo "Thread-safety analysis skipped: clang++ not installed" \
       "(annotations are inert under GCC; install LLVM to enable)."
fi

cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=Tsan
cmake --build "$TSAN_DIR" -j "$(nproc)"
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)"
echo "TSan check passed."

cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=Asan
cmake --build "$ASAN_DIR" -j "$(nproc)"
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$(nproc)"
echo "ASan/UBSan check passed."
