#!/usr/bin/env bash
# Static and dynamic checks, strictest first:
#  1. Warnings wall — the whole tree at -Wall -Wextra -Wshadow
#     -Wconversion -Werror (Warnings build type, -O1 to dodge libstdc++
#     false positives at -O3).
#  2. Lint — clang-tidy over src/ (tools/lint.sh; skips when clang-tidy
#     is not installed).
#  3. ThreadSanitizer — races in the concurrent batch engine (most
#     importantly concurrency_test, which races evaluators over the
#     shared synopsis and eval cache).
#  4. AddressSanitizer + UBSan — memory errors in the allocation-heavy
#     evaluation kernel (bump arena, pooled state registry, SSO linear
#     forms) across the full test suite.
# Sanitizer builds lack -DNDEBUG, so the src/verify invariant hooks
# (XMLSEL_VERIFY_LEVEL=1) are live during both test runs.
# Any warning, lint finding, data race, or memory error fails this script.
#
# Usage: tools/check.sh [tsan-build-dir] [asan-build-dir] [warn-build-dir]
#        (defaults: build-tsan build-asan build-warn)
set -euo pipefail

cd "$(dirname "$0")/.."
TSAN_DIR="${1:-build-tsan}"
ASAN_DIR="${2:-build-asan}"
WARN_DIR="${3:-build-warn}"

cmake -B "$WARN_DIR" -S . -DCMAKE_BUILD_TYPE=Warnings
cmake --build "$WARN_DIR" -j "$(nproc)"
echo "Warnings wall passed."

tools/lint.sh

cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=Tsan
cmake --build "$TSAN_DIR" -j "$(nproc)"
ctest --test-dir "$TSAN_DIR" --output-on-failure -j "$(nproc)"
echo "TSan check passed."

cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=Asan
cmake --build "$ASAN_DIR" -j "$(nproc)"
ctest --test-dir "$ASAN_DIR" --output-on-failure -j "$(nproc)"
echo "ASan/UBSan check passed."
