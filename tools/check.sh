#!/usr/bin/env bash
# Sanitizer checks:
#  1. ThreadSanitizer — races in the concurrent batch engine (most
#     importantly concurrency_test, which races evaluators over the
#     shared synopsis and eval cache).
#  2. AddressSanitizer + UBSan — memory errors in the allocation-heavy
#     evaluation kernel (bump arena, pooled state registry, SSO linear
#     forms) across the full test suite.
# Any data race or memory error anywhere fails this script.
#
# Usage: tools/check.sh [tsan-build-dir] [asan-build-dir]
#        (defaults: build-tsan build-asan)
set -euo pipefail

cd "$(dirname "$0")/.."
TSAN_DIR="${1:-build-tsan}"
ASAN_DIR="${2:-build-asan}"

cmake -B "$TSAN_DIR" -S . -DCMAKE_BUILD_TYPE=Tsan
cmake --build "$TSAN_DIR" -j "$(nproc)"
ctest --test-dir "$TSAN_DIR" --output-on-failure
echo "TSan check passed."

cmake -B "$ASAN_DIR" -S . -DCMAKE_BUILD_TYPE=Asan
cmake --build "$ASAN_DIR" -j "$(nproc)"
ctest --test-dir "$ASAN_DIR" --output-on-failure
echo "ASan/UBSan check passed."
