#!/usr/bin/env bash
# Concurrency check: build the tree under ThreadSanitizer and run the
# test suite (most importantly concurrency_test, which races evaluators
# over the shared synopsis and eval cache). A data race anywhere in the
# batch engine fails this script.
#
# Usage: tools/check.sh [build-dir]      (default: build-tsan)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Tsan
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure
echo "TSan check passed."
