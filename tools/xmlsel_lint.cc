// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// xmlsel_lint — the project-invariant linter (DESIGN.md "Verification &
// static analysis"). Enforces the rules generic clang-tidy cannot: they
// are *project* contracts, not C++ style. A finding is a build failure
// (tools/lint.sh, the `tree-lint` ctest, and the xmlsel-lint CI job all
// gate on exit 0).
//
// Rules (table also in DESIGN.md):
//
//   hot-alloc        no heap-allocating call (new/make_unique/push_back/
//                    resize/…) inside a function marked XMLSEL_HOT
//   lock-free-read   no lock-taking token (MutexLock/lock_guard/.Lock()/…)
//                    inside a function marked XMLSEL_LOCK_FREE_READ
//   raw-mutex        no std:: synchronization primitives outside
//                    src/xmlsel/mutex.h (use the annotated wrappers)
//   banned-function  no strtol/atoi/sprintf/strcpy family on serving
//                    paths (src/serving, src/storage, src/xmlsel)
//   unguarded-cast   no reinterpret_cast on serving/storage paths without
//                    an explicit justification comment (mmap'd bytes are
//                    untrusted input; every cast must argue its bounds)
//   discarded-status no bare-statement call to a function this tree
//                    declares as returning Status/Result (belt-and-braces
//                    under the [[nodiscard]] class attribute)
//   include-guard    src/ headers carry the canonical XMLSEL_<PATH>_H_
//                    guard
//   using-namespace  no `using namespace` at any scope in a header
//   iostream-header  no <iostream> in src/ headers (static-init order +
//                    code bloat; use <cstdio> in the library)
//
// Any finding can be suppressed — visibly, per line — with a trailing or
// preceding comment `// xmlsel-lint: allow(<rule>): <reason>`. The reason
// is mandatory prose: the point of the linter is that every exception to
// a kernel invariant reads as a justified decision.
//
// The tool is deliberately lexical (scrubbed + tokenized source, no
// libclang dependency): it must build and run anywhere the library does,
// including boxes with no clang toolchain. The price is that it checks
// tokens, not semantics — rules are designed so the lexical form is the
// invariant (markers name functions; banned identifiers are banned
// spellings).
//
// Usage:
//   xmlsel_lint --root <repo-root> [--compdb <compile_commands.json>]
//               [file...]
// With --compdb, lints every compdb entry under <root>/src plus all
// headers under <root>/src; with explicit files, lints exactly those.

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace {

namespace fs = std::filesystem;

struct Finding {
  std::string file;
  int line = 0;
  std::string rule;
  std::string message;
};

struct Token {
  std::string text;
  int line = 0;
};

// ---------------------------------------------------------------------------
// Source preparation
// ---------------------------------------------------------------------------

/// Per-line `xmlsel-lint: allow(rule)` markers, collected from the raw
/// text before comments are scrubbed away.
using AllowMap = std::map<int, std::set<std::string>>;

AllowMap CollectAllows(const std::string& src) {
  AllowMap allows;
  int line = 1;
  size_t pos = 0;
  while (pos < src.size()) {
    size_t eol = src.find('\n', pos);
    if (eol == std::string::npos) eol = src.size();
    std::string_view l(src.data() + pos, eol - pos);
    size_t at = l.find("xmlsel-lint: allow(");
    while (at != std::string_view::npos) {
      size_t open = at + std::strlen("xmlsel-lint: allow(");
      size_t close = l.find(')', open);
      if (close != std::string_view::npos) {
        allows[line].insert(std::string(l.substr(open, close - open)));
      }
      at = l.find("xmlsel-lint: allow(", open);
    }
    pos = eol + 1;
    ++line;
  }
  return allows;
}

bool Allowed(const AllowMap& allows, int line, const std::string& rule) {
  // The allow comment may sit on the offending line or the line above.
  for (int l : {line, line - 1}) {
    auto it = allows.find(l);
    if (it != allows.end() && it->second.count(rule) != 0) return true;
  }
  return false;
}

/// Blanks comments, string literals, and char literals (newlines kept so
/// line numbers survive). Handles raw strings well enough for this tree.
std::string Scrub(const std::string& src) {
  std::string out = src;
  enum class St { kCode, kLine, kBlock, kStr, kChar, kRaw } st = St::kCode;
  std::string raw_delim;
  for (size_t i = 0; i < src.size(); ++i) {
    char c = src[i];
    char n = i + 1 < src.size() ? src[i + 1] : '\0';
    switch (st) {
      case St::kCode:
        if (c == '/' && n == '/') {
          st = St::kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = St::kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == 'R' && n == '"' &&
                   (i == 0 || (!std::isalnum(static_cast<unsigned char>(
                                   src[i - 1])) &&
                               src[i - 1] != '_'))) {
          size_t p = i + 2;
          while (p < src.size() && src[p] != '(') ++p;
          raw_delim = ")" + src.substr(i + 2, p - (i + 2)) + "\"";
          for (size_t k = i; k <= p && k < src.size(); ++k) out[k] = ' ';
          i = p;
          st = St::kRaw;
        } else if (c == '"') {
          st = St::kStr;
          out[i] = ' ';
        } else if (c == '\'') {
          st = St::kChar;
          out[i] = ' ';
        }
        break;
      case St::kLine:
        if (c == '\n') {
          st = St::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case St::kBlock:
        if (c == '*' && n == '/') {
          st = St::kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kStr:
        if (c == '\\') {
          out[i] = ' ';
          if (n != '\n') {
            if (i + 1 < src.size()) out[i + 1] = ' ';
            ++i;
          }
        } else if (c == '"') {
          st = St::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (i + 1 < src.size()) out[i + 1] = ' ';
          ++i;
        } else if (c == '\'') {
          st = St::kCode;
          out[i] = ' ';
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case St::kRaw:
        if (src.compare(i, raw_delim.size(), raw_delim) == 0) {
          for (size_t k = 0; k < raw_delim.size(); ++k) out[i + k] = ' ';
          i += raw_delim.size() - 1;
          st = St::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// Tokenizes scrubbed source into identifiers/numbers and single-char
/// punctuation (enough structure for brace matching and token rules).
std::vector<Token> Tokenize(const std::string& scrubbed) {
  std::vector<Token> toks;
  int line = 1;
  size_t i = 0;
  while (i < scrubbed.size()) {
    char c = scrubbed[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < scrubbed.size() &&
             (std::isalnum(static_cast<unsigned char>(scrubbed[j])) ||
              scrubbed[j] == '_')) {
        ++j;
      }
      toks.push_back({scrubbed.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < scrubbed.size() &&
             (std::isalnum(static_cast<unsigned char>(scrubbed[j])) ||
              scrubbed[j] == '.' || scrubbed[j] == '\'')) {
        ++j;
      }
      toks.push_back({scrubbed.substr(i, j - i), line});
      i = j;
      continue;
    }
    toks.push_back({std::string(1, c), line});
    ++i;
  }
  return toks;
}

struct SourceFile {
  std::string path;      ///< as given
  std::string rel;       ///< path relative to root, '/'-separated
  std::string raw;
  std::string scrubbed;
  std::vector<Token> tokens;
  AllowMap allows;
  bool is_header = false;
};

// ---------------------------------------------------------------------------
// Rule helpers
// ---------------------------------------------------------------------------

/// Finds the token ranges of function bodies whose heads carry `marker`.
/// A head is the marker token up to the first top-level `{` (or `;`,
/// which means declaration-only — skipped). Returns (open, close) index
/// pairs into `toks` for each body, braces included.
std::vector<std::pair<size_t, size_t>> MarkedBodies(
    const std::vector<Token>& toks, const std::string& marker) {
  std::vector<std::pair<size_t, size_t>> bodies;
  for (size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].text != marker) continue;
    int paren = 0;
    size_t j = i + 1;
    for (; j < toks.size(); ++j) {
      const std::string& t = toks[j].text;
      if (t == "(") {
        ++paren;
      } else if (t == ")") {
        --paren;
      } else if (paren == 0 && t == ";") {
        break;  // declaration without body
      } else if (paren == 0 && t == "{") {
        int depth = 1;
        size_t k = j + 1;
        for (; k < toks.size() && depth > 0; ++k) {
          if (toks[k].text == "{") ++depth;
          if (toks[k].text == "}") --depth;
        }
        bodies.emplace_back(j, k);
        break;
      }
    }
  }
  return bodies;
}

bool PathStartsWith(const std::string& rel, std::string_view prefix) {
  return rel.rfind(prefix, 0) == 0;
}

// ---------------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------------

const std::set<std::string>& HotAllocTokens() {
  static const std::set<std::string> kSet = {
      "new",       "make_unique", "make_shared", "malloc",       "calloc",
      "realloc",   "strdup",      "push_back",   "emplace_back", "emplace",
      "resize",    "reserve",     "assign",      "insert",       "append",
      "to_string", "operator_new"};
  return kSet;
}

const std::set<std::string>& LockTokens() {
  static const std::set<std::string> kSet = {
      "MutexLock",  "CountedMutexLock", "lock_guard", "unique_lock",
      "scoped_lock", "shared_lock",     "Lock",       "TryLock",
      "lock",        "try_lock",        "Wait",       "wait"};
  return kSet;
}

void CheckMarkedBodies(const SourceFile& f, const std::string& marker,
                       const std::set<std::string>& banned,
                       const std::string& rule, const char* what,
                       std::vector<Finding>* out) {
  for (auto [open, close] : MarkedBodies(f.tokens, marker)) {
    for (size_t i = open; i < close && i < f.tokens.size(); ++i) {
      const Token& t = f.tokens[i];
      if (banned.count(t.text) == 0) continue;
      if (Allowed(f.allows, t.line, rule)) continue;
      out->push_back({f.path, t.line, rule,
                      "'" + t.text + "' " + what + " (function marked " +
                          marker + ")"});
    }
  }
}

void CheckRawMutex(const SourceFile& f, std::vector<Finding>* out) {
  // The wrapper header is the one sanctioned site.
  if (f.rel == "src/xmlsel/mutex.h") return;
  static const std::set<std::string> kStdSync = {
      "mutex",        "timed_mutex",        "recursive_mutex",
      "shared_mutex", "condition_variable", "condition_variable_any",
      "lock_guard",   "unique_lock",        "scoped_lock",
      "shared_lock"};
  const auto& toks = f.tokens;
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "std" && toks[i + 1].text == ":" &&
        toks[i + 2].text == ":" && i + 3 < toks.size() &&
        kStdSync.count(toks[i + 3].text) != 0) {
      if (Allowed(f.allows, toks[i].line, "raw-mutex")) continue;
      out->push_back({f.path, toks[i].line, "raw-mutex",
                      "raw std::" + toks[i + 3].text +
                          "; use the annotated wrappers in xmlsel/mutex.h"});
    }
  }
  // Includes of the raw headers are equally banned.
  std::istringstream in(f.raw);
  std::string line;
  int ln = 0;
  while (std::getline(in, line)) {
    ++ln;
    for (const char* hdr : {"<mutex>", "<condition_variable>",
                            "<shared_mutex>"}) {
      if (line.find("#include") != std::string::npos &&
          line.find(hdr) != std::string::npos &&
          !Allowed(f.allows, ln, "raw-mutex")) {
        out->push_back({f.path, ln, "raw-mutex",
                        std::string("#include ") + hdr +
                            "; use xmlsel/mutex.h"});
      }
    }
  }
}

void CheckBannedFunctions(const SourceFile& f, std::vector<Finding>* out) {
  if (!PathStartsWith(f.rel, "src/serving/") &&
      !PathStartsWith(f.rel, "src/storage/") &&
      !PathStartsWith(f.rel, "src/xmlsel/")) {
    return;
  }
  static const std::map<std::string, const char*> kBanned = {
      {"strtol", "use std::from_chars (no errno protocol, no saturation)"},
      {"strtoul", "use std::from_chars"},
      {"strtoll", "use std::from_chars"},
      {"strtoull", "use std::from_chars"},
      {"atoi", "use std::from_chars"},
      {"atol", "use std::from_chars"},
      {"sprintf", "use snprintf"},
      {"strcpy", "use bounded copies"},
      {"strcat", "use bounded copies"},
      {"gets", "never"},
  };
  for (size_t i = 0; i < f.tokens.size(); ++i) {
    const Token& t = f.tokens[i];
    auto it = kBanned.find(t.text);
    if (it == kBanned.end()) continue;
    // Only calls: next token must open the argument list.
    if (i + 1 >= f.tokens.size() || f.tokens[i + 1].text != "(") continue;
    if (Allowed(f.allows, t.line, "banned-function")) continue;
    out->push_back({f.path, t.line, "banned-function",
                    "'" + t.text + "' is banned on serving paths: " +
                        it->second});
  }
}

void CheckUnguardedCasts(const SourceFile& f, std::vector<Finding>* out) {
  if (!PathStartsWith(f.rel, "src/serving/") &&
      !PathStartsWith(f.rel, "src/storage/")) {
    return;
  }
  for (const Token& t : f.tokens) {
    if (t.text != "reinterpret_cast") continue;
    if (Allowed(f.allows, t.line, "cast")) continue;
    out->push_back({f.path, t.line, "unguarded-cast",
                    "reinterpret_cast on a serving/storage path needs an "
                    "'xmlsel-lint: allow(cast): <why bounds hold>' comment"});
  }
}

std::string ExpectedGuard(const std::string& rel) {
  // src/estimator/synopsis.h -> XMLSEL_ESTIMATOR_SYNOPSIS_H_
  std::string tail = rel.substr(std::strlen("src/"));
  std::string guard = "XMLSEL_";
  for (char c : tail) {
    if (c == '/' || c == '.') {
      guard += '_';
    } else {
      guard += static_cast<char>(
          std::toupper(static_cast<unsigned char>(c)));
    }
  }
  guard += '_';
  return guard;
}

void CheckHeaderHygiene(const SourceFile& f, std::vector<Finding>* out) {
  if (!f.is_header || !PathStartsWith(f.rel, "src/")) return;

  const std::string guard = ExpectedGuard(f.rel);
  bool ifndef_ok = false, define_ok = false;
  std::istringstream in(f.raw);
  std::string line;
  int ln = 0;
  int first_directive_line = 0;
  while (std::getline(in, line)) {
    ++ln;
    if (line.find("#ifndef") != std::string::npos) {
      if (first_directive_line == 0) first_directive_line = ln;
      if (line.find(guard) != std::string::npos) ifndef_ok = true;
    } else if (line.find("#define") != std::string::npos && ifndef_ok &&
               line.find(guard) != std::string::npos) {
      define_ok = true;
    }
    if (line.find("#include <iostream>") != std::string::npos &&
        !Allowed(f.allows, ln, "iostream-header")) {
      out->push_back({f.path, ln, "iostream-header",
                      "<iostream> in a library header; use <cstdio>"});
    }
  }
  if ((!ifndef_ok || !define_ok) &&
      !Allowed(f.allows, first_directive_line, "include-guard")) {
    out->push_back({f.path, first_directive_line == 0 ? 1
                                                      : first_directive_line,
                    "include-guard",
                    "header must use the canonical guard " + guard});
  }

  for (size_t i = 0; i + 1 < f.tokens.size(); ++i) {
    if (f.tokens[i].text == "using" && f.tokens[i + 1].text == "namespace" &&
        !Allowed(f.allows, f.tokens[i].line, "using-namespace")) {
      out->push_back({f.path, f.tokens[i].line, "using-namespace",
                      "'using namespace' in a header leaks into every "
                      "includer"});
    }
  }
}

/// Collects names of functions declared in this tree with return type
/// Status or Result<...> (token patterns `Status Name (` and
/// `Result < ... > Name (`). Qualified declarations contribute their last
/// identifier. Used by the discarded-status rule.
void CollectStatusReturners(const SourceFile& f, std::set<std::string>* names,
                            std::set<std::string>* other_returners) {
  const auto& toks = f.tokens;
  auto is_ident = [](const std::string& t) {
    return std::isalpha(static_cast<unsigned char>(t[0])) || t[0] == '_';
  };
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].text == "Status" && is_ident(toks[i + 1].text) &&
        toks[i + 2].text == "(") {
      // Over-collection (e.g. the factory idiom `Status OK()`) is
      // harmless: it only makes the rule watch more call shapes.
      names->insert(toks[i + 1].text);
      continue;
    }
    if (toks[i].text == "Result" && toks[i + 1].text == "<") {
      int depth = 1;
      size_t j = i + 2;
      for (; j < toks.size() && depth > 0; ++j) {
        if (toks[j].text == "<") ++depth;
        if (toks[j].text == ">") --depth;
      }
      if (j + 1 < toks.size() && is_ident(toks[j].text) &&
          toks[j + 1].text == "(") {
        names->insert(toks[j].text);
      }
      continue;
    }
    // Any other `Type [*&] Name (` shape marks Name as having a non-Status
    // declaration somewhere; such overloaded names are excluded from the
    // rule (the [[nodiscard]] attribute still covers them soundly).
    if (is_ident(toks[i].text)) {
      size_t j = i + 1;
      while (j < toks.size() &&
             (toks[j].text == "*" || toks[j].text == "&")) {
        ++j;
      }
      if (j + 1 < toks.size() && is_ident(toks[j].text) &&
          toks[j + 1].text == "(") {
        other_returners->insert(toks[j].text);
      }
    }
  }
}

void CheckDiscardedStatus(const SourceFile& f,
                          const std::set<std::string>& returners,
                          std::vector<Finding>* out) {
  const auto& toks = f.tokens;
  for (size_t i = 1; i + 1 < toks.size(); ++i) {
    if (returners.count(toks[i].text) == 0) continue;
    if (toks[i + 1].text != "(") continue;
    // Statement-initial call: previous token ends a statement or opens a
    // block. (`obj.Foo(...)` as a full statement is matched via the
    // preceding `.`/`->` by walking back over the receiver chain — kept
    // simple: only flag receiver-less and `x.Foo()` forms.)
    size_t b = i;
    if (b >= 2 && (toks[b - 1].text == "." ||
                   (toks[b - 1].text == ">" && toks[b - 2].text == "-"))) {
      b = toks[b - 1].text == "." ? b - 2 : b - 3;
      // Walk back over a simple receiver: identifier or `)`-less chain.
      // Keywords end the chain — `return x.F();` consumes the result.
      static const std::set<std::string> kStmtKeywords = {
          "return", "co_return", "co_yield", "throw", "goto", "case"};
      while (b > 0 && kStmtKeywords.count(toks[b].text) == 0 &&
             (std::isalnum(static_cast<unsigned char>(toks[b].text[0])) ||
              toks[b].text[0] == '_' || toks[b].text == "." ||
              toks[b].text == "-" || toks[b].text == ">")) {
        --b;
      }
      ++b;
    }
    if (b == 0) continue;
    if (toks[b - 1].text == "return" || toks[b - 1].text == "co_return" ||
        toks[b - 1].text == "throw") {
      continue;
    }
    const std::string& prev = toks[b - 1].text;
    if (prev != ";" && prev != "{" && prev != "}") continue;
    // Find the end of the call; a discard ends the statement right there.
    int depth = 1;
    size_t j = i + 2;
    for (; j < toks.size() && depth > 0; ++j) {
      if (toks[j].text == "(") ++depth;
      if (toks[j].text == ")") --depth;
    }
    if (j < toks.size() && toks[j].text == ";") {
      if (Allowed(f.allows, toks[i].line, "discarded-status")) continue;
      out->push_back({f.path, toks[i].line, "discarded-status",
                      "result of '" + toks[i].text +
                          "' (Status/Result) is discarded"});
    }
  }
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

bool ReadFile(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

/// Pulls the "file" entries out of compile_commands.json. The format is
/// machine-written and flat, so a targeted scan beats a JSON dependency.
std::vector<std::string> CompdbFiles(const std::string& json) {
  std::vector<std::string> files;
  size_t pos = 0;
  while ((pos = json.find("\"file\"", pos)) != std::string::npos) {
    size_t colon = json.find(':', pos);
    size_t q1 = json.find('"', colon + 1);
    size_t q2 = json.find('"', q1 + 1);
    if (colon == std::string::npos || q1 == std::string::npos ||
        q2 == std::string::npos) {
      break;
    }
    files.push_back(json.substr(q1 + 1, q2 - q1 - 1));
    pos = q2 + 1;
  }
  return files;
}

std::string RelPath(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  fs::path rel = fs::relative(p, root, ec);
  std::string s = (ec ? p : rel).generic_string();
  return s;
}

int Usage() {
  std::fprintf(stderr,
               "usage: xmlsel_lint --root <dir> [--compdb <json>] "
               "[file...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string root_arg = ".";
  std::string compdb;
  std::vector<std::string> file_args;
  for (int i = 1; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "--root" && i + 1 < argc) {
      root_arg = argv[++i];
    } else if (a == "--compdb" && i + 1 < argc) {
      compdb = argv[++i];
    } else if (a == "--help" || a == "-h") {
      return Usage();
    } else if (!a.empty() && a[0] == '-') {
      return Usage();
    } else {
      file_args.push_back(a);
    }
  }

  std::error_code ec;
  fs::path root = fs::canonical(root_arg, ec);
  if (ec) {
    std::fprintf(stderr, "xmlsel_lint: bad --root '%s'\n", root_arg.c_str());
    return 2;
  }

  std::set<std::string> paths;  // absolute, deduped
  if (!compdb.empty()) {
    std::string json;
    if (!ReadFile(compdb, &json)) {
      std::fprintf(stderr, "xmlsel_lint: cannot read compdb '%s'\n",
                   compdb.c_str());
      return 2;
    }
    for (const std::string& fpath : CompdbFiles(json)) {
      fs::path p = fs::path(fpath);
      if (!p.is_absolute()) p = root / p;
      std::string rel = RelPath(p, root);
      if (rel.rfind("src/", 0) == 0 && fs::exists(p)) {
        paths.insert(p.generic_string());
      }
    }
    // Headers never appear in a compdb; sweep them from the tree.
    fs::path src = root / "src";
    if (fs::exists(src)) {
      for (const auto& e : fs::recursive_directory_iterator(src)) {
        if (e.is_regular_file() && e.path().extension() == ".h") {
          paths.insert(e.path().generic_string());
        }
      }
    }
  }
  for (const std::string& a : file_args) {
    fs::path p = fs::path(a);
    if (!p.is_absolute()) p = fs::current_path() / p;
    paths.insert(p.lexically_normal().generic_string());
  }
  if (paths.empty()) {
    // Default: the whole src/ tree under root.
    fs::path src = root / "src";
    if (!fs::exists(src)) return Usage();
    for (const auto& e : fs::recursive_directory_iterator(src)) {
      if (!e.is_regular_file()) continue;
      fs::path ext = e.path().extension();
      if (ext == ".h" || ext == ".cc") {
        paths.insert(e.path().generic_string());
      }
    }
  }

  std::vector<SourceFile> files;
  for (const std::string& p : paths) {
    SourceFile f;
    f.path = p;
    if (!ReadFile(p, &f.raw)) {
      std::fprintf(stderr, "xmlsel_lint: cannot read '%s'\n", p.c_str());
      return 2;
    }
    f.rel = RelPath(fs::path(p), root);
    f.is_header = fs::path(p).extension() == ".h";
    f.allows = CollectAllows(f.raw);
    f.scrubbed = Scrub(f.raw);
    f.tokens = Tokenize(f.scrubbed);
    files.push_back(std::move(f));
  }

  // Cross-file pass: names that return Status/Result somewhere and are
  // never declared with any other return type (overloaded names would
  // make the lexical rule guess; [[nodiscard]] still covers those).
  std::set<std::string> status_names, other_names, returners;
  for (const SourceFile& f : files) {
    CollectStatusReturners(f, &status_names, &other_names);
  }
  std::set_difference(status_names.begin(), status_names.end(),
                      other_names.begin(), other_names.end(),
                      std::inserter(returners, returners.begin()));

  std::vector<Finding> findings;
  for (const SourceFile& f : files) {
    CheckMarkedBodies(f, "XMLSEL_HOT", HotAllocTokens(), "hot-alloc",
                      "may heap-allocate on the kernel hot path", &findings);
    CheckMarkedBodies(f, "XMLSEL_LOCK_FREE_READ", LockTokens(),
                      "lock-free-read", "takes a lock on a reader fast path",
                      &findings);
    CheckRawMutex(f, &findings);
    CheckBannedFunctions(f, &findings);
    CheckUnguardedCasts(f, &findings);
    CheckHeaderHygiene(f, &findings);
    CheckDiscardedStatus(f, returners, &findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              if (a.file != b.file) return a.file < b.file;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });
  for (const Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.file.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("xmlsel_lint: %zu finding(s) in %zu file(s)\n",
                findings.size(), files.size());
    return 1;
  }
  std::printf("xmlsel_lint: clean (%zu files)\n", files.size());
  return 0;
}
