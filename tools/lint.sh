#!/usr/bin/env bash
# Project lint, two layers:
#
#  1. xmlsel_lint — the in-tree invariant linter (tools/xmlsel_lint.cc):
#     hot-path allocation bans, lock-free-read markers, raw-mutex and
#     banned-function rules, discarded Status, header hygiene. Built from
#     source here, so this layer runs on any box with a C++ compiler —
#     no LLVM needed.
#  2. clang-tidy over src/ using the repo's .clang-tidy
#     (WarningsAsErrors: '*', so any finding fails the script). Uses
#     run-clang-tidy for parallelism when available, falling back to a
#     single clang-tidy invocation. Skips gracefully (with a notice)
#     when clang-tidy is not installed, so tools/check.sh can run on
#     boxes without LLVM.
#
# Both layers need a compile_commands.json, which the Release configure
# produces.
#
# Usage: tools/lint.sh [build-dir]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

cmake --build "$BUILD_DIR" -j "$(nproc)" --target xmlsel_lint > /dev/null
echo "lint: xmlsel_lint over src/"
"$BUILD_DIR/tools/xmlsel_lint" --root . \
    --compdb "$BUILD_DIR/compile_commands.json"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint: clang-tidy not installed; skipping (install LLVM to enable)."
  exit 0
fi

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "lint: clang-tidy over ${#SOURCES[@]} files in src/"
if command -v run-clang-tidy > /dev/null 2>&1; then
  # run-clang-tidy parallelizes across files; its regex positional args
  # select which compdb entries to check.
  run-clang-tidy -p "$BUILD_DIR" -quiet -j "$(nproc)" 'src/.*\.cc$'
else
  clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
fi
echo "lint: clean."
