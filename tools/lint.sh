#!/usr/bin/env bash
# clang-tidy over src/ using the repo's .clang-tidy (WarningsAsErrors: '*',
# so any finding fails the script). Needs a compile_commands.json, which
# the Release configure produces.
#
# Skips gracefully (exit 0 with a notice) when clang-tidy is not
# installed, so tools/check.sh can run on boxes without LLVM.
#
# Usage: tools/lint.sh [build-dir]    (default: build)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

if ! command -v clang-tidy > /dev/null 2>&1; then
  echo "lint: clang-tidy not installed; skipping (install LLVM to enable)."
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

mapfile -t SOURCES < <(find src -name '*.cc' | sort)
echo "lint: clang-tidy over ${#SOURCES[@]} files in src/"
clang-tidy -p "$BUILD_DIR" --quiet "${SOURCES[@]}"
echo "lint: clean."
