// Copyright 2026 The xmlsel Authors
// SPDX-License-Identifier: Apache-2.0
//
// Command-line front end for the library:
//
//   xmlsel_tool stats    <file.xml>
//       Table-1-style characteristics plus compression ratios.
//   xmlsel_tool compress <file.xml> [kappa]
//       Build the synopsis; dump the (lossy) grammar and sizes.
//   xmlsel_tool estimate <file.xml> <xpath> [kappa]
//       Estimate the selectivity of an XPath query with guaranteed
//       bounds, and report the exact count for comparison.
//   xmlsel_tool generate <dblp|swissprot|xmark|psd|catalog> <elements>
//       Emit a synthetic dataset as XML on stdout.
//   xmlsel_tool verify   <file.xml> [kappa]
//       Run the cross-layer invariant verifier (src/verify) over every
//       pipeline stage built from the document; print a per-layer report.
//   xmlsel_tool pack     <file.xml> <out.synopsis> [kappa]
//       Build the synopsis (streaming) and write the mmap-able packed
//       image; audit the written file before reporting success.
//   xmlsel_tool serve-file <file.synopsis> <xpath> [xpath ...]
//       Estimate queries straight off the packed image — no document, no
//       full decode; report bounds plus decode-cache occupancy.
//   xmlsel_tool serve [--memory-budget=BYTES] <tenant=file> [...]
//       Multi-tenant serving: publish each file into the sharded catalog
//       (.synopsis images are mmap-served with lazy decode, anything else
//       is parsed as XML and served eagerly), then read "tenant xpath"
//       lines from stdin, estimate them through the async batch front,
//       and report per-tenant versions, cache stats, and residency.
//       --memory-budget caps the summed decode-cache residency of all
//       mapped tenants: the catalog evicts decoded rules (largest images
//       first, CLOCK within each) back under the budget on every publish
//       and before the final report, and the report includes the
//       catalog-wide residency and eviction counters.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "baseline/exact.h"
#include "data/fb_index.h"
#include "data/generator.h"
#include "estimator/estimator.h"
#include "estimator/mapped_estimator.h"
#include "query/parser.h"
#include "query/rewrite.h"
#include "serving/batch_front.h"
#include "serving/catalog.h"
#include "storage/mapped.h"
#include "verify/verify.h"
#include "xml/parser.h"
#include "xml/stats.h"
#include "xml/writer.h"

namespace {

int Usage(const char* error) {
  if (error != nullptr) std::fprintf(stderr, "xmlsel_tool: %s\n", error);
  std::fprintf(stderr,
               "usage:\n"
               "  xmlsel_tool stats    <file.xml>\n"
               "  xmlsel_tool compress <file.xml> [kappa]\n"
               "  xmlsel_tool estimate <file.xml> <xpath> [kappa]\n"
               "  xmlsel_tool generate <dataset> <elements>\n"
               "  xmlsel_tool verify   <file.xml> [kappa]\n"
               "  xmlsel_tool pack     <file.xml> <out.synopsis> [kappa]\n"
               "  xmlsel_tool serve-file <file.synopsis> <xpath> "
               "[xpath ...]\n"
               "  xmlsel_tool serve    [--memory-budget=BYTES] "
               "<tenant=file> [tenant=file ...]\n"
               "      (then \"tenant xpath\" lines on stdin)\n");
  return 2;
}

xmlsel::Result<xmlsel::Document> Load(const char* path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return xmlsel::Status::NotFound(std::string("cannot open ") + path);
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string text = buf.str();
  return xmlsel::ParseXml(text);
}

int Stats(const char* path) {
  auto doc = Load(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  xmlsel::DocumentStats stats = xmlsel::ComputeStats(doc.value());
  std::printf("%s\n", stats.ToString().c_str());
  xmlsel::FbIndex fb(doc.value());
  std::printf("F/B index size: %lld classes (%d refinement rounds)\n",
              static_cast<long long>(fb.size()), fb.rounds());
  xmlsel::SltGrammar g = xmlsel::BplexCompress(doc.value());
  std::printf("SLT grammar: %d rules, %lld nodes, %lld edges (%.2f%% of "
              "document edges)\n",
              g.rule_count(), static_cast<long long>(g.NodeCount()),
              static_cast<long long>(g.EdgeCount()),
              100.0 * static_cast<double>(g.EdgeCount()) /
                  static_cast<double>(stats.element_count));
  return 0;
}

int Compress(const char* path, int kappa) {
  auto doc = Load(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  xmlsel::SynopsisOptions options;
  options.kappa = kappa;
  xmlsel::Synopsis s = xmlsel::Synopsis::Build(doc.value(), options);
  std::printf("lossless: %d rules / %lld nodes; lossy (kappa=%d): %d rules "
              "/ %lld nodes; packed %lld bytes\n",
              s.lossless().rule_count(),
              static_cast<long long>(s.lossless().NodeCount()), kappa,
              s.lossy().rule_count(),
              static_cast<long long>(s.lossy().NodeCount()),
              static_cast<long long>(s.PackedSizeBytes()));
  std::printf("%s", s.lossy().ToString(s.names()).c_str());
  return 0;
}

int Estimate(const char* path, const char* xpath, int kappa) {
  auto doc = Load(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  xmlsel::SynopsisOptions options;
  options.kappa = kappa;
  xmlsel::SelectivityEstimator est =
      xmlsel::SelectivityEstimator::Build(doc.value(), options);
  auto r = est.Estimate(xpath);
  if (!r.ok()) {
    std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
    return 1;
  }
  std::printf("%s -> [%lld, %lld] (synopsis %lld bytes)\n", xpath,
              static_cast<long long>(r.value().lower),
              static_cast<long long>(r.value().upper),
              static_cast<long long>(est.SizeBytes()));
  // Exact reference (the oracle reads the document directly).
  xmlsel::NameTable names = doc.value().names();
  auto q = xmlsel::ParseQuery(xpath, &names);
  if (q.ok()) {
    auto rw = xmlsel::RewriteReverseAxes(q.value());
    if (rw.ok() && !rw.value().unsatisfiable) {
      xmlsel::ExactEvaluator oracle(doc.value());
      std::printf("exact: %lld\n",
                  static_cast<long long>(oracle.Count(rw.value().query)));
    }
  }
  return 0;
}

int Generate(const char* name, int64_t elements) {
  xmlsel::DatasetId id;
  if (!std::strcmp(name, "dblp")) {
    id = xmlsel::DatasetId::kDblp;
  } else if (!std::strcmp(name, "swissprot")) {
    id = xmlsel::DatasetId::kSwissProt;
  } else if (!std::strcmp(name, "xmark")) {
    id = xmlsel::DatasetId::kXmark;
  } else if (!std::strcmp(name, "psd")) {
    id = xmlsel::DatasetId::kPsd;
  } else if (!std::strcmp(name, "catalog")) {
    id = xmlsel::DatasetId::kCatalog;
  } else {
    return Usage("unknown dataset (want dblp|swissprot|xmark|psd|catalog)");
  }
  xmlsel::Document doc = xmlsel::GenerateDataset(id, elements, 42);
  xmlsel::WriteOptions wopts;
  wopts.indent = 1;
  std::fputs(xmlsel::WriteXml(doc, wopts).c_str(), stdout);
  return 0;
}

int Pack(const char* xml_path, const char* out_path, int kappa) {
  auto doc = Load(xml_path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  xmlsel::SynopsisOptions options;
  options.kappa = kappa;
  xmlsel::Synopsis s = xmlsel::Synopsis::Build(doc.value(), options);
  xmlsel::Status st = xmlsel::PackSynopsisToFile(s, out_path);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  // Re-open what was actually written and audit it before claiming success.
  xmlsel::MappedOpenOptions mopts;
  mopts.verify_checksum = true;
  auto image = xmlsel::MappedSynopsis::Open(out_path, mopts);
  if (!image.ok()) {
    std::fprintf(stderr, "packed image fails to re-open: %s\n",
                 image.status().ToString().c_str());
    return 1;
  }
  st = xmlsel::VerifyMappedImage(*image.value());
  if (!st.ok()) {
    std::fprintf(stderr, "packed image fails verification: %s\n",
                 st.ToString().c_str());
    return 1;
  }
  const xmlsel::MappedSynopsis& m = *image.value();
  std::printf("%s: %lld bytes (kappa=%d, %lld elements)\n", out_path,
              static_cast<long long>(m.file_bytes()), m.kappa(),
              static_cast<long long>(m.element_total()));
  std::printf("  lossless layer: %lld rules\n",
              static_cast<long long>(m.lossless_layer().rule_count()));
  std::printf("  lossy layer:    %lld rules (%d productions deleted)\n",
              static_cast<long long>(m.lossy_layer().rule_count()),
              m.deleted_productions());
  return 0;
}

int ServeFile(const char* syn_path, char** xpaths, int count) {
  xmlsel::MappedOpenOptions options;
  options.verify_checksum = true;
  auto est = xmlsel::MappedEstimator::Open(syn_path, options);
  if (!est.ok()) {
    std::fprintf(stderr, "%s\n", est.status().ToString().c_str());
    return 1;
  }
  int failures = 0;
  for (int i = 0; i < count; ++i) {
    auto r = est.value().Estimate(xpaths[i]);
    if (!r.ok()) {
      std::fprintf(stderr, "%s: %s\n", xpaths[i],
                   r.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%s -> [%lld, %lld]\n", xpaths[i],
                static_cast<long long>(r.value().lower),
                static_cast<long long>(r.value().upper));
  }
  xmlsel::MappedCacheStats stats = est.value().cache_stats();
  std::printf("decode cache: %lld/%lld rules decoded, %lld bytes resident, "
              "%lld hits / %lld misses\n",
              static_cast<long long>(stats.decoded_rules),
              static_cast<long long>(stats.total_rules),
              static_cast<long long>(stats.resident_bytes),
              static_cast<long long>(stats.hits),
              static_cast<long long>(stats.misses));
  return failures == 0 ? 0 : 1;
}

bool EndsWith(const char* s, const char* suffix) {
  size_t n = std::strlen(s), m = std::strlen(suffix);
  return n >= m && std::strcmp(s + (n - m), suffix) == 0;
}

int Serve(char** specs, int count) {
  xmlsel::ServingCatalog catalog;
  int64_t budget = 0;
  if (count > 0 && !std::strncmp(specs[0], "--memory-budget=", 16)) {
    char* end = nullptr;
    budget = std::strtoll(specs[0] + 16, &end, 10);
    if (end == specs[0] + 16 || *end != '\0' || budget <= 0) {
      return Usage("--memory-budget wants a positive byte count");
    }
    catalog.SetDecodeBudget(budget);
    ++specs;
    --count;
  }
  if (count < 1) return Usage("serve needs at least one tenant=file");
  for (int i = 0; i < count; ++i) {
    const char* eq = std::strchr(specs[i], '=');
    if (eq == nullptr || eq == specs[i] || eq[1] == '\0') {
      return Usage("serve wants tenant=file specs");
    }
    std::string tenant(specs[i], static_cast<size_t>(eq - specs[i]));
    const char* path = eq + 1;
    if (EndsWith(path, ".synopsis")) {
      auto version = catalog.PublishFile(tenant, path);
      if (!version.ok()) {
        std::fprintf(stderr, "%s: %s\n", path,
                     version.status().ToString().c_str());
        return 1;
      }
      std::printf("published '%s' v%llu (mapped, %s)\n", tenant.c_str(),
                  static_cast<unsigned long long>(version.value()), path);
    } else {
      auto doc = Load(path);
      if (!doc.ok()) {
        std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
        return 1;
      }
      auto synopsis = std::make_shared<xmlsel::Synopsis>(
          xmlsel::Synopsis::Build(doc.value(), xmlsel::SynopsisOptions{}));
      uint64_t version = catalog.PublishSynopsis(tenant, std::move(synopsis));
      std::printf("published '%s' v%llu (eager, %s)\n", tenant.c_str(),
                  static_cast<unsigned long long>(version), path);
    }
  }
  xmlsel::Status audit = xmlsel::VerifyServingCatalog(catalog);
  if (!audit.ok()) {
    std::fprintf(stderr, "catalog audit failed: %s\n",
                 audit.ToString().c_str());
    return 1;
  }

  xmlsel::ThreadPool pool(xmlsel::DefaultThreadCount());
  xmlsel::ServingFront front(&catalog, &pool);
  struct Pending {
    std::string tenant;
    std::string xpath;
    xmlsel::BatchFuture future;
  };
  std::vector<Pending> pending;
  std::string line;
  while (std::getline(std::cin, line)) {
    size_t sep = line.find_first_of(" \t");
    if (line.empty() || sep == std::string::npos) continue;
    std::string tenant = line.substr(0, sep);
    std::string xpath = line.substr(line.find_first_not_of(" \t", sep));
    auto future = front.Submit(tenant, {xpath});
    if (!future.ok()) {
      std::fprintf(stderr, "%s: %s\n", tenant.c_str(),
                   future.status().ToString().c_str());
      continue;
    }
    pending.push_back(
        Pending{std::move(tenant), std::move(xpath), future.value()});
  }
  int failures = 0;
  for (const Pending& p : pending) {
    auto outcome = p.future.Wait();
    if (!outcome.ok()) {
      std::fprintf(stderr, "%s %s: %s\n", p.tenant.c_str(), p.xpath.c_str(),
                   outcome.status().ToString().c_str());
      ++failures;
      continue;
    }
    const auto& r = outcome.value().results[0];
    if (!r.ok()) {
      std::fprintf(stderr, "%s %s: %s\n", p.tenant.c_str(), p.xpath.c_str(),
                   r.status().ToString().c_str());
      ++failures;
      continue;
    }
    std::printf("%s %s -> [%lld, %lld] (v%llu)\n", p.tenant.c_str(),
                p.xpath.c_str(), static_cast<long long>(r.value().lower),
                static_cast<long long>(r.value().upper),
                static_cast<unsigned long long>(
                    outcome.value().snapshot_version));
  }
  front.Drain();

  // With a budget set, bring residency back under it before the report
  // (stdin-driven estimation re-decodes freely between publishes).
  if (budget > 0) {
    catalog.EnforceDecodeBudget();
    catalog.ReclaimEvictedRules();
  }
  for (const std::string& tenant : catalog.Tenants()) {
    auto stats = catalog.TenantStats(tenant);
    if (!stats.ok()) continue;
    const xmlsel::SnapshotStats& s = stats.value();
    std::printf("tenant '%s': v%llu %s, %lld elements, compiled cache "
                "%lld entries (%lld hits / %lld misses)",
                tenant.c_str(), static_cast<unsigned long long>(s.version),
                s.mapped ? "mapped" : "eager",
                static_cast<long long>(s.element_total),
                static_cast<long long>(s.compile_cache_size),
                static_cast<long long>(s.compile_cache_hits),
                static_cast<long long>(s.compile_cache_misses));
    if (s.mapped) {
      std::printf(", %lld rules decoded / %lld bytes resident of %llu on "
                  "disk",
                  static_cast<long long>(s.residency.decoded_rules()),
                  static_cast<long long>(s.residency.resident_bytes()),
                  static_cast<unsigned long long>(s.residency.file_bytes));
    }
    std::printf("\n");
  }
  xmlsel::CatalogStats cs = catalog.Stats();
  std::printf("catalog: %lld tenants over %d shards, %lld hits / %lld "
              "misses, %lld publishes, %lld reader fast-path locks\n",
              static_cast<long long>(cs.tenants), catalog.shard_count(),
              static_cast<long long>(cs.hits),
              static_cast<long long>(cs.misses),
              static_cast<long long>(cs.publishes),
              static_cast<long long>(cs.reader_fast_path_locks));
  std::printf("decode cache: %lld rules / %lld bytes resident across "
              "images, %lld evictions, budget %s\n",
              static_cast<long long>(cs.decoded_rules),
              static_cast<long long>(cs.decode_resident_bytes),
              static_cast<long long>(cs.decode_evictions),
              cs.decode_budget_bytes > 0
                  ? (std::to_string(cs.decode_budget_bytes) + " bytes").c_str()
                  : "unbounded");
  return failures == 0 ? 0 : 1;
}

int Verify(const char* path, int kappa) {
  auto doc = Load(path);
  if (!doc.ok()) {
    std::fprintf(stderr, "%s\n", doc.status().ToString().c_str());
    return 1;
  }
  xmlsel::SynopsisOptions options;
  options.kappa = kappa;
  xmlsel::VerifyReport report = xmlsel::VerifyPipeline(doc.value(), options);
  std::fputs(report.ToString().c_str(), stdout);
  if (!report.ok()) {
    std::fprintf(stderr, "verification FAILED\n");
    return 1;
  }
  std::printf("all layers verified\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage("missing subcommand");
  if (!std::strcmp(argv[1], "stats")) {
    if (argc < 3) return Usage("stats needs <file.xml>");
    return Stats(argv[2]);
  }
  if (!std::strcmp(argv[1], "compress")) {
    if (argc < 3) return Usage("compress needs <file.xml>");
    return Compress(argv[2], argc > 3 ? std::atoi(argv[3]) : 0);
  }
  if (!std::strcmp(argv[1], "estimate")) {
    if (argc < 4) return Usage("estimate needs <file.xml> <xpath>");
    return Estimate(argv[2], argv[3], argc > 4 ? std::atoi(argv[4]) : 0);
  }
  if (!std::strcmp(argv[1], "generate")) {
    if (argc < 4) return Usage("generate needs <dataset> <elements>");
    return Generate(argv[2], std::atoll(argv[3]));
  }
  if (!std::strcmp(argv[1], "verify")) {
    if (argc < 3) return Usage("verify needs <file.xml>");
    return Verify(argv[2], argc > 3 ? std::atoi(argv[3]) : 0);
  }
  if (!std::strcmp(argv[1], "pack")) {
    if (argc < 4) return Usage("pack needs <file.xml> <out.synopsis>");
    return Pack(argv[2], argv[3], argc > 4 ? std::atoi(argv[4]) : 0);
  }
  if (!std::strcmp(argv[1], "serve-file")) {
    if (argc < 4) return Usage("serve-file needs <file.synopsis> <xpath>");
    return ServeFile(argv[2], argv + 3, argc - 3);
  }
  if (!std::strcmp(argv[1], "serve")) {
    if (argc < 3) return Usage("serve needs at least one tenant=file");
    return Serve(argv + 2, argc - 2);
  }
  return Usage("unknown subcommand");
}
